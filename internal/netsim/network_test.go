package netsim

import (
	"testing"

	"sensjoin/internal/topology"
)

// lineDeployment builds n nodes on a line spaced 40 m apart with 50 m
// range: node i talks exactly to i-1 and i+1.
func lineDeployment(n int) *topology.Deployment {
	return topology.Line(n-1, 40, 50)
}

type recordingAcct struct {
	tx, rx map[NodeID][2]int // packets, bytes
}

func newRecordingAcct() *recordingAcct {
	return &recordingAcct{tx: map[NodeID][2]int{}, rx: map[NodeID][2]int{}}
}

func (a *recordingAcct) OnTx(n NodeID, phase string, p, b int) {
	cur := a.tx[n]
	a.tx[n] = [2]int{cur[0] + p, cur[1] + b}
}

func (a *recordingAcct) OnRx(n NodeID, phase string, p, b int) {
	cur := a.rx[n]
	a.rx[n] = [2]int{cur[0] + p, cur[1] + b}
}

func TestRadioPackets(t *testing.T) {
	c := DefaultRadio() // 48 max, 8 header => 40 payload
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {40, 1}, {41, 2}, {80, 2}, {81, 3},
	}
	for _, tc := range cases {
		if got := c.Packets(tc.size); got != tc.want {
			t.Errorf("Packets(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
	if c.Payload() != 40 {
		t.Fatalf("Payload = %d, want 40", c.Payload())
	}
}

func TestRadioPanicsOnNoPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for header >= packet")
		}
	}()
	RadioConfig{MaxPacket: 8, HeaderBytes: 8}.Payload()
}

func TestUnicastDelivery(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(3)
	acct := newRecordingAcct()
	net := NewNetwork(sim, dep, DefaultRadio(), acct)
	var got []Message
	net.SetHandler(1, func(m Message) { got = append(got, m) })
	net.Send(Message{Kind: 7, Src: 0, Dst: 1, Phase: "p", Size: 10, Payload: "hello"})
	sim.Run()
	if len(got) != 1 || got[0].Payload != "hello" || got[0].Kind != 7 {
		t.Fatalf("delivery failed: %+v", got)
	}
	if acct.tx[0] != [2]int{1, 10} {
		t.Fatalf("tx accounting = %v, want 1 packet / 10 bytes", acct.tx[0])
	}
	if acct.rx[1] != [2]int{1, 10} {
		t.Fatalf("rx accounting = %v", acct.rx[1])
	}
}

func TestUnicastToNonNeighborDropped(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(3)
	acct := newRecordingAcct()
	net := NewNetwork(sim, dep, DefaultRadio(), acct)
	delivered := false
	net.SetHandler(2, func(m Message) { delivered = true })
	net.Send(Message{Src: 0, Dst: 2, Phase: "p", Size: 5})
	sim.Run()
	if delivered {
		t.Fatal("message to non-neighbor must not be delivered")
	}
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", net.Dropped)
	}
	// Transmission is still charged: the sender cannot know.
	if acct.tx[0][0] != 1 {
		t.Fatal("failed unicast should still cost a transmission")
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(3)
	acct := newRecordingAcct()
	net := NewNetwork(sim, dep, DefaultRadio(), acct)
	heard := map[NodeID]bool{}
	for i := 0; i < 3; i++ {
		id := NodeID(i)
		net.SetHandler(id, func(m Message) { heard[id] = true })
	}
	net.Send(Message{Src: 1, Dst: BroadcastID, Phase: "p", Size: 4})
	sim.Run()
	if !heard[0] || !heard[2] {
		t.Fatalf("broadcast from 1 should reach 0 and 2: %v", heard)
	}
	if heard[1] {
		t.Fatal("sender must not hear its own broadcast")
	}
	// One transmission only, two receptions.
	if acct.tx[1][0] != 1 {
		t.Fatalf("broadcast cost %d transmissions, want 1", acct.tx[1][0])
	}
	if acct.rx[0][0] != 1 || acct.rx[2][0] != 1 {
		t.Fatal("both neighbors should be charged one reception")
	}
}

func TestLinkFailureBlocksDelivery(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(3)
	net := NewNetwork(sim, dep, DefaultRadio(), newRecordingAcct())
	delivered := 0
	net.SetHandler(1, func(m Message) { delivered++ })
	net.LinkDown(0, 1)
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
	if delivered != 0 {
		t.Fatal("downed link must block delivery")
	}
	net.LinkUp(0, 1)
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
	if delivered != 1 {
		t.Fatal("restored link must deliver again")
	}
}

func TestKillAndReviveNode(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(3)
	net := NewNetwork(sim, dep, DefaultRadio(), newRecordingAcct())
	delivered := 0
	net.SetHandler(1, func(m Message) { delivered++ })
	net.KillNode(1)
	if net.Alive(1) {
		t.Fatal("killed node reported alive")
	}
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	// A dead node sends nothing either.
	net.Send(Message{Src: 1, Dst: 0, Size: 5})
	sim.Run()
	if delivered != 0 {
		t.Fatal("dead node must not receive")
	}
	net.ReviveNode(1)
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
	if delivered != 1 {
		t.Fatal("revived node must receive")
	}
}

func TestDeadNodeKilledAfterSendStillMisses(t *testing.T) {
	// A node killed between transmission and delivery misses the message
	// — and is charged no reception energy for it.
	sim := NewSim()
	dep := lineDeployment(2)
	acct := newRecordingAcct()
	net := NewNetwork(sim, dep, DefaultRadio(), acct)
	var events []TraceEvent
	net.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	delivered := 0
	net.SetHandler(1, func(m Message) { delivered++ })
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	net.KillNode(1) // before the air-time delay elapses
	sim.Run()
	if delivered != 0 {
		t.Fatal("message delivered to a node that died in flight")
	}
	if acct.rx[1][0] != 0 {
		t.Fatalf("node killed in flight charged %d rx packets, want 0", acct.rx[1][0])
	}
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 for the in-flight death", net.Dropped)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Event]++
	}
	if counts["tx"] != 1 || counts["drop"] != 1 || counts["rx"] != 0 {
		t.Fatalf("events = %v, want one tx and one drop", counts)
	}
}

func TestRxAccountingAtDeliveryTime(t *testing.T) {
	// Reception is charged and traced when the message arrives (after air
	// time), not at the send instant.
	sim := NewSim()
	acct := newRecordingAcct()
	net := NewNetwork(sim, lineDeployment(2), DefaultRadio(), acct)
	var rxAt []Time
	net.SetTracer(func(ev TraceEvent) {
		if ev.Event == "rx" {
			rxAt = append(rxAt, ev.At)
			if acct.rx[1][0] != 1 {
				t.Errorf("rx trace fired before/without accounting: %v", acct.rx[1])
			}
		}
	})
	net.SetHandler(1, func(Message) {})
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	if acct.rx[1][0] != 0 {
		t.Fatal("reception charged at send time")
	}
	sim.Run()
	air := net.Radio.AirTime(1, 5)
	if len(rxAt) != 1 || rxAt[0] != air {
		t.Fatalf("rx at %v, want [%g]", rxAt, air)
	}
	if acct.rx[1][0] != 1 {
		t.Fatal("reception not charged after delivery")
	}
}

func TestAirTimeOrdersDeliveries(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(2)
	net := NewNetwork(sim, dep, DefaultRadio(), newRecordingAcct())
	var sizes []int
	net.SetHandler(1, func(m Message) { sizes = append(sizes, m.Size) })
	// A large message sent first arrives after a small message sent
	// at the same instant? No: both are scheduled from now; the larger
	// one simply takes longer air time.
	net.Send(Message{Src: 0, Dst: 1, Size: 200}) // several packets
	net.Send(Message{Src: 0, Dst: 1, Size: 1})
	sim.Run()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 200 {
		t.Fatalf("deliveries = %v, want small-first", sizes)
	}
}

func TestSlotForIsGenerousAndRounded(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(2), DefaultRadio(), nil)
	slot := net.SlotFor(100)
	if slot < net.MaxAirTime(100)-1e-9 {
		t.Fatal("SlotFor must cover the worst-case air time")
	}
	ms := slot * 1000
	if ms != float64(int(ms)) {
		t.Fatalf("SlotFor should be a millisecond multiple, got %g s", slot)
	}
}

func TestLossModel(t *testing.T) {
	sim := NewSim()
	dep := lineDeployment(2)
	net := NewNetwork(sim, dep, DefaultRadio(), newRecordingAcct())
	delivered := 0
	net.SetHandler(1, func(m Message) { delivered++ })
	net.SetLossRate(0.5, 42)
	const sends = 200
	for i := 0; i < sends; i++ {
		net.Send(Message{Src: 0, Dst: 1, Size: 5})
	}
	sim.Run()
	if delivered == 0 || delivered == sends {
		t.Fatalf("50%% loss delivered %d of %d", delivered, sends)
	}
	if net.Lost != sends-delivered {
		t.Fatalf("Lost = %d, want %d", net.Lost, sends-delivered)
	}
	// Rough band for Bernoulli(0.5) over 200 trials.
	if delivered < 60 || delivered > 140 {
		t.Fatalf("delivered %d far from the expected ~100", delivered)
	}
	// Disable restores reliability.
	net.SetLossRate(0, 0)
	before := delivered
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
	if delivered != before+1 {
		t.Fatal("loss model not disabled")
	}
}

func TestLossModelMultiPacketMoreFragile(t *testing.T) {
	// A message needing many packets survives less often than a single
	// packet at the same per-packet rate.
	count := func(size int) int {
		sim := NewSim()
		net := NewNetwork(sim, lineDeployment(2), DefaultRadio(), newRecordingAcct())
		delivered := 0
		net.SetHandler(1, func(m Message) { delivered++ })
		net.SetLossRate(0.1, 7)
		for i := 0; i < 300; i++ {
			net.Send(Message{Src: 0, Dst: 1, Size: size})
		}
		sim.Run()
		return delivered
	}
	small := count(5)   // 1 packet
	large := count(400) // 10 packets
	if large >= small {
		t.Fatalf("multi-packet messages should be more fragile: %d vs %d", large, small)
	}
}

func TestTracer(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(3), DefaultRadio(), nil)
	var events []TraceEvent
	net.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	net.SetHandler(1, func(Message) {})
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	net.Send(Message{Src: 0, Dst: 2, Size: 5}) // non-neighbor: drop
	sim.Run()
	want := map[string]int{}
	for _, e := range events {
		want[e.Event]++
	}
	if want["tx"] != 2 || want["rx"] != 1 || want["drop"] != 1 {
		t.Fatalf("events = %v", want)
	}
	net.SetTracer(nil) // disabling must not panic
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
}

func TestTracerMsgIDsAndExpect(t *testing.T) {
	// Every transmission gets a fresh MsgID; all outcome events of one
	// message share it, and a tx's Expect equals its outcome-event count.
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(4), DefaultRadio(), nil)
	var events []TraceEvent
	net.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	for i := 0; i < 4; i++ {
		net.SetHandler(NodeID(i), func(Message) {})
	}
	net.Send(Message{Src: 1, Dst: BroadcastID, Size: 5}) // two neighbors
	net.Send(Message{Src: 0, Dst: 1, Size: 5})
	sim.Run()
	expect := map[int64]int{}
	outcomes := map[int64]int{}
	for _, ev := range events {
		if ev.Event == "tx" {
			if _, dup := expect[ev.MsgID]; dup {
				t.Fatalf("duplicate tx MsgID %d", ev.MsgID)
			}
			expect[ev.MsgID] = ev.Expect
		} else {
			outcomes[ev.MsgID]++
		}
	}
	if len(expect) != 2 {
		t.Fatalf("tx events = %d, want 2", len(expect))
	}
	for id, want := range expect {
		if outcomes[id] != want {
			t.Fatalf("msg %d: %d outcome events, tx expected %d", id, outcomes[id], want)
		}
	}
}

// With tracing disabled, the send/deliver path must stay allocation-free:
// delivery state is pooled and the scheduled callback is a pre-bound
// method value, never a fresh closure.
func TestSendDeliverZeroAllocs(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(4), DefaultRadio(), newRecordingAcct())
	for i := 0; i < 4; i++ {
		net.SetHandler(NodeID(i), func(Message) {})
	}
	send := func() {
		for i := 0; i < 64; i++ {
			net.Send(Message{Src: 1, Dst: BroadcastID, Phase: "p", Size: 20})
			net.Send(Message{Src: 2, Dst: 3, Phase: "p", Size: 90})
		}
		sim.Run()
	}
	send() // warm the delivery pool and event heap
	allocs := testing.AllocsPerRun(50, send)
	if allocs > 0 {
		t.Fatalf("send/deliver with tracing disabled: %.1f allocs per cycle, want 0", allocs)
	}
}
