package field

import (
	"math"
	"testing"

	"sensjoin/internal/geom"
)

func testArea() geom.Rect { return geom.Square(1050) }

func tempField(seed int64) *Field {
	return New(Config{
		Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24, Noise: 0.05,
	}, testArea(), seed)
}

func TestDeterministic(t *testing.T) {
	f1 := tempField(7)
	f2 := tempField(7)
	p := geom.Point{X: 123.4, Y: 567.8}
	if f1.At(p, 0) != f2.At(p, 0) {
		t.Fatal("same seed should give identical readings")
	}
	f3 := tempField(8)
	if f1.At(p, 0) == f3.At(p, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Readings 5 m apart should be far closer than readings 500 m apart,
	// on average: that is the property the quadtree encoding exploits.
	f := tempField(3)
	var near, far float64
	n := 200
	for i := 0; i < n; i++ {
		p := geom.Point{
			X: 100 + 800*geom.HashUnit(uint64(i), 1),
			Y: 100 + 800*geom.HashUnit(uint64(i), 2),
		}
		q := geom.Point{X: p.X + 5, Y: p.Y}
		r := geom.Point{
			X: 100 + 800*geom.HashUnit(uint64(i), 3),
			Y: 100 + 800*geom.HashUnit(uint64(i), 4),
		}
		near += math.Abs(f.Smooth(p, 0) - f.Smooth(q, 0))
		far += math.Abs(f.Smooth(p, 0) - f.Smooth(r, 0))
	}
	if near*5 > far {
		t.Fatalf("field not spatially correlated: near=%g far=%g", near/float64(n), far/float64(n))
	}
}

func TestNoiseIsSmallAndDeterministic(t *testing.T) {
	f := tempField(9)
	p := geom.Point{X: 500, Y: 500}
	a := f.At(p, 0)
	b := f.At(p, 0)
	if a != b {
		t.Fatal("noise must be deterministic per (pos, time)")
	}
	if d := math.Abs(a - f.Smooth(p, 0)); d > 0.5 {
		t.Fatalf("noise too large: %g", d)
	}
	// Different times give different noise.
	if f.At(p, 0) == f.At(p, 1) {
		t.Fatal("noise should vary with time")
	}
}

func TestDrift(t *testing.T) {
	f := New(Config{
		Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24, DriftSpeed: 1.0,
	}, testArea(), 3)
	p := geom.Point{X: 500, Y: 500}
	if f.Smooth(p, 0) == f.Smooth(p, 600) {
		t.Fatal("drifting field should change over 10 minutes")
	}
	static := New(Config{
		Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24,
	}, testArea(), 3)
	if static.Smooth(p, 0) != static.Smooth(p, 600) {
		t.Fatal("static field should not change")
	}
}

func TestValuesNearBase(t *testing.T) {
	f := tempField(11)
	var min, max = math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		p := geom.Point{
			X: 1050 * geom.HashUnit(uint64(i), 10),
			Y: 1050 * geom.HashUnit(uint64(i), 11),
		}
		v := f.At(p, 0)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	// Base 20, amplitude 4 over 24 bumps: values should stay within a
	// plausible environmental range.
	if min < 0 || max > 45 {
		t.Fatalf("field range [%g, %g] implausible for base 20 amp 4", min, max)
	}
	if max-min < 1 {
		t.Fatalf("field range [%g, %g] suspiciously flat", min, max)
	}
}

func TestEnvironmentReadsLocationAttrs(t *testing.T) {
	e := NewEnvironment()
	p := geom.Point{X: 12.5, Y: 99.25}
	if e.Read("x", p, 0) != 12.5 || e.Read("y", p, 0) != 99.25 {
		t.Fatal("x/y must read node coordinates")
	}
	if !e.Has("x") || !e.Has("y") {
		t.Fatal("environment must always expose x and y")
	}
	if e.Has("temp") {
		t.Fatal("empty environment should not report temp")
	}
	if e.Read("temp", p, 0) != 0 {
		t.Fatal("unknown attribute must read as 0")
	}
}

func TestEnvironmentCoupling(t *testing.T) {
	e := NewEnvironment()
	e.Add(tempField(5))
	hum := New(Config{Name: "hum", Base: 50, Amplitude: 2, CorrLength: 200, Bumps: 10}, testArea(), 6)
	e.Add(hum)
	e.Couple("hum", "temp", 0, -0.8)
	p := geom.Point{X: 321, Y: 654}
	want := hum.At(p, 0) - 0.8*e.Read("temp", p, 0)
	if got := e.Read("hum", p, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("coupled read = %g, want %g", got, want)
	}
}

func TestStandardEnvironment(t *testing.T) {
	e := StandardEnvironment(testArea(), 42)
	for _, name := range []string{"temp", "hum", "pres", "light"} {
		if !e.Has(name) {
			t.Fatalf("standard environment missing %q", name)
		}
	}
	if len(e.Names()) != 4 {
		t.Fatalf("Names() = %v, want 4 entries", e.Names())
	}
	// Humidity should anti-correlate with temperature across space.
	var cov, vt, vh, mt, mh float64
	n := 300
	pts := make([]geom.Point, n)
	temps := make([]float64, n)
	hums := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{
			X: 1050 * geom.HashUnit(uint64(i), 20),
			Y: 1050 * geom.HashUnit(uint64(i), 21),
		}
		temps[i] = e.Read("temp", pts[i], 0)
		hums[i] = e.Read("hum", pts[i], 0)
		mt += temps[i]
		mh += hums[i]
	}
	mt /= float64(n)
	mh /= float64(n)
	for i := 0; i < n; i++ {
		cov += (temps[i] - mt) * (hums[i] - mh)
		vt += (temps[i] - mt) * (temps[i] - mt)
		vh += (hums[i] - mh) * (hums[i] - mh)
	}
	corr := cov / math.Sqrt(vt*vh)
	if corr > -0.1 {
		t.Fatalf("temp/hum correlation = %g, want clearly negative", corr)
	}
}

func TestWrap(t *testing.T) {
	if v := wrap(-5, 0, 100); v != 95 {
		t.Fatalf("wrap(-5) = %g, want 95", v)
	}
	if v := wrap(105, 0, 100); v != 5 {
		t.Fatalf("wrap(105) = %g, want 5", v)
	}
	if v := wrap(50, 0, 100); v != 50 {
		t.Fatalf("wrap(50) = %g, want 50", v)
	}
	if v := wrap(7, 5, 5); v != 7 {
		t.Fatalf("wrap with empty range = %g, want unchanged 7", v)
	}
}

// smoothDirect is the pre-cache formula, kept as the equivalence
// reference for the per-t bump-term cache.
func smoothDirect(f *Field, p geom.Point, t float64) float64 {
	v := f.cfg.Base
	sig2 := 2 * f.cfg.CorrLength * f.cfg.CorrLength
	for _, b := range f.bumps {
		cx := b.cx + b.vx*f.cfg.DriftSpeed*t
		cy := b.cy + b.vy*f.cfg.DriftSpeed*t
		cx = wrap(cx, f.area.MinX, f.area.MaxX)
		cy = wrap(cy, f.area.MinY, f.area.MaxY)
		amp := b.amp
		if f.cfg.AmpPeriod > 0 {
			amp *= math.Cos(2*math.Pi*t/f.cfg.AmpPeriod + b.phase)
		}
		d2 := (p.X-cx)*(p.X-cx) + (p.Y-cy)*(p.Y-cy)
		v += amp * math.Exp(-d2/sig2)
	}
	return v
}

// The cached Smooth must be bit-identical to the direct formula — the
// cache hoists the per-bump time terms but performs the same operations
// in the same order. Times alternate to exercise cache misses, hits,
// and replacement.
func TestSmoothCacheMatchesDirectFormula(t *testing.T) {
	fields := []*Field{
		tempField(7), // static: no drift, no amplitude oscillation
		New(Config{Name: "drift", Base: 5, Amplitude: 3, CorrLength: 120,
			Bumps: 16, DriftSpeed: 0.4, AmpPeriod: 3600}, testArea(), 11),
	}
	times := []float64{0, 17.25, 0, 3600, 17.25, 1e6}
	for _, f := range fields {
		for _, tm := range times {
			for i := 0; i < 50; i++ {
				p := geom.Point{
					X: 1050 * geom.HashUnit(uint64(i), 5),
					Y: 1050 * geom.HashUnit(uint64(i), 6),
				}
				got := f.Smooth(p, tm)
				want := smoothDirect(f, p, tm)
				if got != want {
					t.Fatalf("%s: Smooth(%v, %g) = %v, direct formula = %v",
						f.Name(), p, tm, got, want)
				}
			}
		}
	}
}
