// Package field synthesizes spatially correlated sensor fields.
//
// The paper evaluates SENS-Join on "a fixed distribution of the physical
// quantities, emulating real sensor data" (§VI) and motivates the quadtree
// representation with the spatial autocorrelation observed in the Intel
// Lab deployment (§V-A, Fig. 4). We reproduce that setting with smooth
// random fields: a base level plus a sum of Gaussian bumps with a
// configurable correlation length, small deterministic measurement noise,
// and optional temporal drift for continuous queries.
//
// All values are deterministic functions of (seed, position, time), so
// experiments are exactly reproducible and re-sampling a snapshot does not
// perturb unrelated readings.
package field

import (
	"math"
	"math/rand"
	"sync/atomic"

	"sensjoin/internal/geom"
)

// Config describes one scalar field.
type Config struct {
	// Name identifies the physical quantity (e.g. "temp").
	Name string
	// Base is the mean level of the field.
	Base float64
	// Amplitude scales the Gaussian bumps added to the base level.
	Amplitude float64
	// CorrLength is the standard deviation, in meters, of each bump;
	// it controls the spatial correlation length of the field.
	CorrLength float64
	// Bumps is the number of Gaussian bumps scattered over the area.
	Bumps int
	// Noise is the standard deviation of per-reading measurement noise.
	Noise float64
	// DriftSpeed is the speed, in meters per second, at which bump
	// centers move; zero yields a static field.
	DriftSpeed float64
	// AmpPeriod, when positive, makes bump amplitudes oscillate with
	// this period in seconds (temporal variation for SAMPLE PERIOD
	// queries).
	AmpPeriod float64
}

type bump struct {
	cx, cy float64 // center
	vx, vy float64 // drift direction (unit vector)
	amp    float64
	phase  float64
}

// Field is a deterministic scalar field over an area.
type Field struct {
	cfg   Config
	area  geom.Rect
	seed  uint64
	bumps []bump
	// terms caches the per-bump time-dependent factors of the last time
	// queried (see termsAt). Calibration and snapshot sampling evaluate
	// thousands of points at one t, so the trigonometry amortizes to
	// once per bump per t instead of once per bump per point.
	terms atomic.Pointer[bumpTerms]
}

// bumpTerm is one bump's position and amplitude at a fixed time,
// computed exactly as the direct formula does.
type bumpTerm struct {
	cx, cy float64
	amp    float64
}

// bumpTerms is an immutable per-t snapshot of all bump terms.
type bumpTerms struct {
	t     float64
	terms []bumpTerm
}

// New builds a field over area from cfg, seeded deterministically.
func New(cfg Config, area geom.Rect, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed ^ int64(len(cfg.Name))<<32 ^ hashName(cfg.Name)))
	f := &Field{cfg: cfg, area: area, seed: uint64(seed) ^ uint64(hashName(cfg.Name))}
	for i := 0; i < cfg.Bumps; i++ {
		ang := rng.Float64() * 2 * math.Pi
		f.bumps = append(f.bumps, bump{
			cx:    area.MinX + rng.Float64()*area.Width(),
			cy:    area.MinY + rng.Float64()*area.Height(),
			vx:    math.Cos(ang),
			vy:    math.Sin(ang),
			amp:   (rng.Float64()*2 - 1) * cfg.Amplitude,
			phase: rng.Float64() * 2 * math.Pi,
		})
	}
	return f
}

func hashName(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return h
}

// Name returns the configured quantity name.
func (f *Field) Name() string { return f.cfg.Name }

// termsAt returns the bump terms at time t, serving repeated queries at
// one t from the cached snapshot. Snapshots are immutable and replaced
// atomically, so concurrent readers at mixed times are safe: a racing
// fill recomputes the same pure function of t.
func (f *Field) termsAt(t float64) []bumpTerm {
	if c := f.terms.Load(); c != nil && c.t == t {
		return c.terms
	}
	terms := make([]bumpTerm, len(f.bumps))
	for i, b := range f.bumps {
		cx := b.cx + b.vx*f.cfg.DriftSpeed*t
		cy := b.cy + b.vy*f.cfg.DriftSpeed*t
		// Wrap drifting centers back into the area so long runs stay
		// representative.
		cx = wrap(cx, f.area.MinX, f.area.MaxX)
		cy = wrap(cy, f.area.MinY, f.area.MaxY)
		amp := b.amp
		if f.cfg.AmpPeriod > 0 {
			amp *= math.Cos(2*math.Pi*t/f.cfg.AmpPeriod + b.phase)
		}
		terms[i] = bumpTerm{cx: cx, cy: cy, amp: amp}
	}
	f.terms.Store(&bumpTerms{t: t, terms: terms})
	return terms
}

// Smooth returns the noiseless field value at p and time t.
func (f *Field) Smooth(p geom.Point, t float64) float64 {
	v := f.cfg.Base
	sig2 := 2 * f.cfg.CorrLength * f.cfg.CorrLength
	for _, b := range f.termsAt(t) {
		d2 := (p.X-b.cx)*(p.X-b.cx) + (p.Y-b.cy)*(p.Y-b.cy)
		v += b.amp * math.Exp(-d2/sig2)
	}
	return v
}

// At returns a sensor reading at p and time t: the smooth value plus
// deterministic measurement noise derived from (seed, p, t).
func (f *Field) At(p geom.Point, t float64) float64 {
	v := f.Smooth(p, t)
	if f.cfg.Noise > 0 {
		n := geom.HashNorm(f.seed, math.Float64bits(p.X), math.Float64bits(p.Y), math.Float64bits(t))
		v += f.cfg.Noise * n
	}
	return v
}

func wrap(v, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return v
	}
	for v < lo {
		v += w
	}
	for v > hi {
		v -= w
	}
	return v
}

// Environment bundles the fields of one deployment and maps attribute
// names to values. Location attributes ("x", "y") are served from the
// node position rather than a field.
//
// Immutability contract: Add and Couple may only be called while the
// environment is being constructed (StandardEnvironment and
// QuietEnvironment do exactly that). After construction, Read/Has/Names
// only read the maps, so a fully built Environment is safe to share
// across concurrently running simulations (core's deployment cache
// relies on it).
type Environment struct {
	fields map[string]*Field
	// Couplings derives one quantity from another:
	// value = offset + gain*other + field component.
	couplings map[string]coupling
}

type coupling struct {
	other  string
	offset float64
	gain   float64
}

// NewEnvironment returns an empty environment.
func NewEnvironment() *Environment {
	return &Environment{
		fields:    make(map[string]*Field),
		couplings: make(map[string]coupling),
	}
}

// Add registers a field under its configured name.
func (e *Environment) Add(f *Field) { e.fields[f.Name()] = f }

// Couple makes attribute name depend linearly on attribute other in
// addition to name's own field: name = offset + gain*other + field(name).
// The paper's Q2 rationale (humidity/pressure correlate with temperature)
// is modeled this way.
func (e *Environment) Couple(name, other string, offset, gain float64) {
	e.couplings[name] = coupling{other: other, offset: offset, gain: gain}
}

// Has reports whether attribute name can be read from this environment.
func (e *Environment) Has(name string) bool {
	if name == "x" || name == "y" {
		return true
	}
	_, ok := e.fields[name]
	return ok
}

// Read returns the value of attribute name at position p and time t.
// Unknown attributes read as 0.
func (e *Environment) Read(name string, p geom.Point, t float64) float64 {
	switch name {
	case "x":
		return p.X
	case "y":
		return p.Y
	}
	var v float64
	if f, ok := e.fields[name]; ok {
		v = f.At(p, t)
	}
	if c, ok := e.couplings[name]; ok {
		v += c.offset + c.gain*e.Read(c.other, p, t)
	}
	return v
}

// Names returns the field attribute names (excluding x/y), in no
// particular order.
func (e *Environment) Names() []string {
	names := make([]string, 0, len(e.fields))
	for n := range e.fields {
		names = append(names, n)
	}
	return names
}

// QuietEnvironment builds a low-noise, slowly drifting variant of the
// standard environment: consecutive snapshots stay correlated at
// quantization-cell granularity, the precondition for the incremental
// filter mode (paper §VIII future work) to pay off.
func QuietEnvironment(area geom.Rect, seed int64) *Environment {
	e := NewEnvironment()
	add := func(cfg Config, s int64) { e.Add(New(cfg, area, s)) }
	add(Config{Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24, Noise: 0.002, DriftSpeed: 0.01, AmpPeriod: 72000}, seed)
	add(Config{Name: "hum", Base: 55, Amplitude: 6, CorrLength: 200,
		Bumps: 18, Noise: 0.01, DriftSpeed: 0.01, AmpPeriod: 72000}, seed+1)
	add(Config{Name: "pres", Base: 1013, Amplitude: 3, CorrLength: 400,
		Bumps: 10, Noise: 0.01, DriftSpeed: 0.01, AmpPeriod: 72000}, seed+2)
	add(Config{Name: "light", Base: 500, Amplitude: 250, CorrLength: 120,
		Bumps: 30, Noise: 1, DriftSpeed: 0.01, AmpPeriod: 72000}, seed+3)
	e.Couple("hum", "temp", 0, -0.8)
	e.Couple("pres", "temp", 0, -0.15)
	return e
}

// StandardEnvironment builds the default environment used throughout the
// experiments: temperature, humidity, pressure and light fields over the
// given area, with humidity and pressure coupled to temperature.
func StandardEnvironment(area geom.Rect, seed int64) *Environment {
	e := NewEnvironment()
	temp := New(Config{
		Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24, Noise: 0.05, DriftSpeed: 0.4, AmpPeriod: 3600,
	}, area, seed)
	hum := New(Config{
		Name: "hum", Base: 55, Amplitude: 6, CorrLength: 200,
		Bumps: 18, Noise: 0.3, DriftSpeed: 0.3, AmpPeriod: 5400,
	}, area, seed+1)
	pres := New(Config{
		Name: "pres", Base: 1013, Amplitude: 3, CorrLength: 400,
		Bumps: 10, Noise: 0.1, DriftSpeed: 0.2, AmpPeriod: 7200,
	}, area, seed+2)
	light := New(Config{
		Name: "light", Base: 500, Amplitude: 250, CorrLength: 120,
		Bumps: 30, Noise: 5, DriftSpeed: 0.5, AmpPeriod: 1800,
	}, area, seed+3)
	e.Add(temp)
	e.Add(hum)
	e.Add(pres)
	e.Add(light)
	// Warm air holds more moisture but relative humidity drops; pressure
	// falls slightly with temperature. Values are illustrative.
	e.Couple("hum", "temp", 0, -0.8)
	e.Couple("pres", "temp", 0, -0.15)
	return e
}
