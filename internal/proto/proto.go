// Package proto defines the sensjoind wire protocol: a length-prefixed
// frame stream carrying JSON messages over any reliable byte transport
// (TCP in practice).
//
// Frame layout (all integers big-endian):
//
//	uint32  length   // of everything after this field: kind + payload
//	byte    kind     // message kind, see the Kind* constants
//	[]byte  payload  // JSON encoding of the kind's message struct
//
// A session opens with Hello/HelloOK, then the client pipelines Query
// frames (each with a client-chosen, session-unique positive ID) and the
// server interleaves per-query response frames, demultiplexed by that
// ID. One query's response stream is:
//
//	Header                      // once, before any rows
//	{ Rows* EpochEnd }          // once per epoch (one-shot: exactly once)
//	Done                        // or Error, which also terminates it
//
// See PROTOCOL.md for the full narrative specification.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this package. A server
// answers a Hello with a different major version with an Error frame
// (CodeProto) and closes the connection.
const Version = 1

// MaxFrame bounds one frame's kind+payload size; both sides reject
// larger frames as malformed rather than allocating unboundedly.
const MaxFrame = 8 << 20

// Message kinds. Client-to-server kinds are small, server-to-client
// kinds start at 16; the split is cosmetic (kinds are unique anyway)
// but makes traces easier to read.
const (
	KindHello  byte = 1 // client → server: open a session
	KindQuery  byte = 2 // client → server: submit a query
	KindCancel byte = 3 // client → server: cancel a running query
	KindBye    byte = 4 // client → server: orderly close

	KindHelloOK  byte = 16 // server → client: session accepted
	KindHeader   byte = 17 // server → client: result columns + plan facts
	KindRows     byte = 18 // server → client: a chunk of result rows
	KindEpochEnd byte = 19 // server → client: one epoch's table is complete
	KindDone     byte = 20 // server → client: query finished
	KindError    byte = 21 // server → client: query (or session) failed
)

// Error codes carried by Error frames.
const (
	// CodeProto: the peer violated the protocol (bad frame, bad version,
	// duplicate query ID, ...). The server closes the connection.
	CodeProto = "proto"
	// CodeParse: the query text failed to parse or bind.
	CodeParse = "parse"
	// CodeOverCapacity: admission control rejected the query; retry
	// later or against a less loaded server.
	CodeOverCapacity = "over-capacity"
	// CodeExec: the query failed during execution.
	CodeExec = "exec"
	// CodeShutdown: the server is draining; no new queries are admitted.
	CodeShutdown = "shutdown"
	// CodeCanceled: the client canceled the query.
	CodeCanceled = "canceled"
	// CodeTimeout: the query exceeded the server's per-epoch execution
	// deadline; its slot was reclaimed.
	CodeTimeout = "timeout"
)

// Hello opens a session.
type Hello struct {
	Version int
}

// HelloOK accepts a session and states the server's default deployment.
type HelloOK struct {
	Version int
	Session int64
	Nodes   int
	Seed    int64
}

// Query submits one query for execution.
type Query struct {
	// ID is chosen by the client; it must be positive and unused by any
	// other in-flight query of this session.
	ID int64
	// Src is the query text in the sensjoin query language.
	Src string
	// Method selects the join method: "sens" (default) or "external".
	Method string `json:",omitempty"`
	// At is the snapshot time of the first (or only) epoch.
	At float64 `json:",omitempty"`
	// Rounds caps the epochs of a periodic query (default 1; one-shot
	// queries always run exactly one epoch).
	Rounds int `json:",omitempty"`
	// Nodes/Seed override the server's default deployment (0 = default).
	Nodes int   `json:",omitempty"`
	Seed  int64 `json:",omitempty"`
	// TraceID optionally names this query in the server's flight
	// recorder and trace exports. Empty lets the server assign one; the
	// assigned (or echoed) ID comes back on the Header.
	TraceID string `json:",omitempty"`
}

// Header precedes a query's rows.
type Header struct {
	ID      int64
	Columns []string
	// CacheHit reports whether the prepared-query cache served this
	// query's compiled plan.
	CacheHit bool
	// Shared reports shared (grouped) execution; ClusterSize is the
	// number of queries sharing the protocol round (1 when not shared).
	Shared      bool `json:",omitempty"`
	ClusterSize int  `json:",omitempty"`
	// TraceID identifies this query in the server's flight recorder
	// (/debug/queries on the observability port). It echoes the client's
	// Query.TraceID when one was supplied, else it is server-assigned.
	TraceID string `json:",omitempty"`
	// Sampled reports that the server captured a full span tree for this
	// query (per its -trace-sample rate); the tree is served at
	// /debug/queries?trace=<TraceID>.
	Sampled bool `json:",omitempty"`
}

// Rows carries a chunk of one epoch's result rows.
type Rows struct {
	ID    int64
	Epoch int
	Rows  [][]float64
}

// EpochEnd closes one epoch's table.
type EpochEnd struct {
	ID    int64
	Epoch int
	// Time is the snapshot time the epoch sampled.
	Time float64
	// RowCount is the epoch's total row count (all Rows chunks).
	RowCount int
	Complete bool
	// Contributing/Members mirror core.Result's node counts.
	Contributing int
	Members      int
	ResponseTime float64
}

// Done terminates a query's response stream.
type Done struct {
	ID     int64
	Epochs int
}

// Error terminates a query's response stream (ID > 0) or reports a
// session-level failure (ID == 0, after which the server closes).
type Error struct {
	ID   int64
	Code string
	Msg  string
}

// Cancel asks the server to stop a running query. The query still
// terminates with Done (epochs so far) or Error{CodeCanceled}.
type Cancel struct {
	ID int64
}

// WriteFrame encodes v as one frame. It issues a single Write, so
// callers may serialize concurrent writers with just a mutex.
func WriteFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("proto: marshal kind %d: %w", kind, err)
	}
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("proto: frame kind %d exceeds %d bytes", kind, MaxFrame)
	}
	buf := make([]byte, 4+1+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = kind
	copy(buf[5:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame and returns its kind and raw payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Decode unmarshals a frame payload into v.
func Decode(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("proto: bad payload: %w", err)
	}
	return nil
}
