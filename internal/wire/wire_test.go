package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrCodecRoundtripPrecision(t *testing.T) {
	c := AttrCodec{Min: 0, Max: 40} // the temperature attribute
	step := c.Step()
	for i := 0; i < 2000; i++ {
		v := rand.New(rand.NewSource(int64(i))).Float64() * 40
		got := c.Decode(c.Encode(v))
		if math.Abs(got-v) > step/2+1e-12 {
			t.Fatalf("roundtrip error %g exceeds half step %g", math.Abs(got-v), step/2)
		}
	}
}

func TestAttrCodecClamps(t *testing.T) {
	c := AttrCodec{Min: 0, Max: 100}
	if c.Encode(-5) != 0 {
		t.Fatal("below range must clamp to 0")
	}
	if c.Encode(1e9) != 65535 {
		t.Fatal("above range must clamp to max code")
	}
	if c.Decode(0) != 0 || c.Decode(65535) != 100 {
		t.Fatal("boundary decode wrong")
	}
}

func TestAttrCodecDegenerate(t *testing.T) {
	c := AttrCodec{Min: 5, Max: 5}
	if c.Encode(7) != 0 {
		t.Fatal("degenerate range must encode to 0")
	}
}

func TestQuickAttrCodecMonotone(t *testing.T) {
	c := AttrCodec{Min: -50, Max: 150}
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 200) - 50
		b = math.Mod(math.Abs(b), 200) - 50
		if a > b {
			a, b = b, a
		}
		return c.Encode(a) <= c.Encode(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func testCodec() TupleCodec {
	return TupleCodec{Attrs: []AttrCodec{
		{Min: 0, Max: 40},     // temp
		{Min: 0, Max: 100},    // hum
		{Min: 0, Max: 1050},   // x
		{Min: 990, Max: 1040}, // pres
	}}
}

func TestBatchSizeMatchesAccounting(t *testing.T) {
	// The central claim: the marshalled batch is exactly the accounted
	// 2 bytes per attribute per tuple.
	tc := testCodec()
	rng := rand.New(rand.NewSource(3))
	var tuples [][]float64
	for i := 0; i < 57; i++ {
		tuples = append(tuples, []float64{
			rng.Float64() * 40, rng.Float64() * 100,
			rng.Float64() * 1050, 990 + rng.Float64()*50,
		})
	}
	b, err := tc.MarshalBatch(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 57*tc.TupleBytes() {
		t.Fatalf("batch = %d bytes, accounted %d", len(b), 57*tc.TupleBytes())
	}
	back, err := tc.UnmarshalBatch(b, 57)
	if err != nil {
		t.Fatal(err)
	}
	for i, vals := range back {
		for j, v := range vals {
			if math.Abs(v-tuples[i][j]) > tc.Attrs[j].Step()/2+1e-9 {
				t.Fatalf("tuple %d attr %d: %g vs %g", i, j, v, tuples[i][j])
			}
		}
	}
}

func TestMarshalErrors(t *testing.T) {
	tc := testCodec()
	if _, err := tc.MarshalBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, _, err := tc.UnmarshalTuple([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer must fail")
	}
	b, _ := tc.MarshalBatch([][]float64{{1, 2, 3, 1000}})
	if _, err := tc.UnmarshalBatch(append(b, 0xff), 1); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	if _, err := tc.UnmarshalBatch(b, 2); err == nil {
		t.Fatal("over-count must fail")
	}
}

func TestHeaderAllowance(t *testing.T) {
	if HeaderAllowance(0, 2) != 0 {
		t.Fatal("empty message needs no allowance")
	}
	// 4 tuples x 2 relations = 8 flag bits = 1 byte, + 1 count byte.
	if got := HeaderAllowance(4, 2); got != 2 {
		t.Fatalf("allowance = %d, want 2", got)
	}
	if got := HeaderAllowance(5, 2); got != 3 {
		t.Fatalf("allowance = %d, want 3", got)
	}
}

func TestEncodeNaNAndInf(t *testing.T) {
	c := AttrCodec{Min: -10, Max: 50}
	// NaN maps to code 0 deterministically: the float->int conversion it
	// would otherwise reach is implementation-defined in Go.
	if got := c.Encode(math.NaN()); got != 0 {
		t.Fatalf("Encode(NaN) = %d, want 0", got)
	}
	if got := c.Decode(c.Encode(math.NaN())); got != c.Min {
		t.Fatalf("NaN round-trip = %g, want Min %g", got, c.Min)
	}
	// Infinities clamp to the range edges and round-trip exactly.
	if got := c.Encode(math.Inf(1)); got != 65535 {
		t.Fatalf("Encode(+Inf) = %d, want 65535", got)
	}
	if got := c.Decode(c.Encode(math.Inf(1))); got != c.Max {
		t.Fatalf("+Inf round-trip = %g, want Max %g", got, c.Max)
	}
	if got := c.Encode(math.Inf(-1)); got != 0 {
		t.Fatalf("Encode(-Inf) = %d, want 0", got)
	}
	if got := c.Decode(c.Encode(math.Inf(-1))); got != c.Min {
		t.Fatalf("-Inf round-trip = %g, want Min %g", got, c.Min)
	}
	// A degenerate range stays deterministic too.
	if got := (AttrCodec{Min: 5, Max: 5}).Encode(math.NaN()); got != 0 {
		t.Fatalf("degenerate-range Encode(NaN) = %d, want 0", got)
	}
}

func TestHeaderAllowanceCountFieldBoundary(t *testing.T) {
	// The count field is 1 byte up to 255 tuples and 2 bytes beyond.
	flagBytes := func(tuples, rels int) int { return (tuples*rels + 7) / 8 }
	if got := HeaderAllowance(255, 1); got != 1+flagBytes(255, 1) {
		t.Fatalf("allowance(255) = %d, want %d", got, 1+flagBytes(255, 1))
	}
	if got := HeaderAllowance(256, 1); got != 2+flagBytes(256, 1) {
		t.Fatalf("allowance(256) = %d, want %d", got, 2+flagBytes(256, 1))
	}
	if got := HeaderAllowance(1000, 2); got != 2+flagBytes(1000, 2) {
		t.Fatalf("allowance(1000) = %d, want %d", got, 2+flagBytes(1000, 2))
	}
}
