// Package wire defines the byte-level encodings behind the simulator's
// size accounting.
//
// The accounting follows the paper: two bytes per attribute value
// (§IV-B), the quadtree bitstring for join-attribute sets (§V-C), and a
// fixed per-packet header. This package makes those numbers concrete: a
// fixed-point codec that fits any attribute into exactly two bytes at
// its native sensor resolution, batch tuple marshalling whose length
// equals the accounted message size, and the documented header allowance
// for the per-message metadata (tuple counts, relation flags) that rides
// in the packet headers already charged by the radio model.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AttrCodec encodes one attribute as an unsigned 16-bit fixed-point
// value over [Min, Max] — the form an ADC reports.
type AttrCodec struct {
	Min, Max float64
}

// Step returns the codec's quantization step (the worst-case roundtrip
// error is half a step).
func (c AttrCodec) Step() float64 {
	return (c.Max - c.Min) / 65535
}

// Encode clamps v into [Min, Max] and returns its fixed-point code. NaN
// (a failed sensor reading) maps to code 0 deterministically — without
// the explicit check it would pass both clamps and reach the float→int
// conversion, whose result for NaN is implementation-defined in Go.
func (c AttrCodec) Encode(v float64) uint16 {
	if c.Max <= c.Min || math.IsNaN(v) {
		return 0
	}
	f := (v - c.Min) / (c.Max - c.Min)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return uint16(math.Round(f * 65535))
}

// Decode returns the value at the center of the code's quantization
// cell.
func (c AttrCodec) Decode(code uint16) float64 {
	return c.Min + float64(code)/65535*(c.Max-c.Min)
}

// TupleCodec marshals complete tuples: one AttrCodec per attribute, two
// bytes per value, little endian.
type TupleCodec struct {
	Attrs []AttrCodec
}

// TupleBytes returns the wire size of one tuple.
func (t TupleCodec) TupleBytes() int { return 2 * len(t.Attrs) }

// MarshalTuple appends one tuple's encoding to dst.
func (t TupleCodec) MarshalTuple(dst []byte, vals []float64) ([]byte, error) {
	if len(vals) != len(t.Attrs) {
		return nil, fmt.Errorf("wire: %d values for %d attributes", len(vals), len(t.Attrs))
	}
	for i, v := range vals {
		dst = binary.LittleEndian.AppendUint16(dst, t.Attrs[i].Encode(v))
	}
	return dst, nil
}

// UnmarshalTuple decodes one tuple from the front of b.
func (t TupleCodec) UnmarshalTuple(b []byte) ([]float64, []byte, error) {
	need := t.TupleBytes()
	if len(b) < need {
		return nil, nil, fmt.Errorf("wire: tuple needs %d bytes, have %d", need, len(b))
	}
	vals := make([]float64, len(t.Attrs))
	for i := range t.Attrs {
		vals[i] = t.Attrs[i].Decode(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return vals, b[need:], nil
}

// MarshalBatch encodes a batch of tuples; the result's length is exactly
// count * TupleBytes — the size the accounting charges for a
// complete-tuples message.
func (t TupleCodec) MarshalBatch(tuples [][]float64) ([]byte, error) {
	out := make([]byte, 0, len(tuples)*t.TupleBytes())
	for _, vals := range tuples {
		var err error
		out, err = t.MarshalTuple(out, vals)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalBatch decodes count tuples.
func (t TupleCodec) UnmarshalBatch(b []byte, count int) ([][]float64, error) {
	out := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		vals, rest, err := t.UnmarshalTuple(b)
		if err != nil {
			return nil, err
		}
		out = append(out, vals)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d tuples", len(b), count)
	}
	return out, nil
}

// HeaderAllowance returns the per-message metadata bytes that ride in
// the packet headers the radio model already charges: a tuple count per
// message (one byte up to 255 tuples, two beyond — a single byte would
// silently misaccount larger batches) plus the relation-membership flags
// (nRelations bits per tuple, packed). The default 8-byte packet header
// leaves room for this next to source, type and sequence fields on
// messages of typical size; the allowance quantifies it for audits.
func HeaderAllowance(tupleCount, nRelations int) int {
	if tupleCount <= 0 {
		return 0
	}
	count := 1
	if tupleCount > 255 {
		count = 2
	}
	flagBits := tupleCount * nRelations
	return count + (flagBits+7)/8
}
