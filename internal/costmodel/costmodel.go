// Package costmodel predicts the communication cost of the join methods
// without simulating them.
//
// The paper justifies computing both the pre-computation join and the
// final result at the base station with a theoretical analysis ([20],
// §IV-E "Join Locations"). This package is that analysis, turned into a
// planner: given the routing tree's shape (per-node subtree member
// counts), the tuple sizes and the expected result fraction, it predicts
// the packet counts of the external join and of each SENS-Join phase,
// and recommends a method. The prediction is validated against the
// simulator in the tests.
//
// The model is exact about the dominant effect — the per-packet floor:
// a forwarding node transmits max(1, ceil(bytes/payload)) packets, so
// near the leaves no method can beat one packet per node, and savings
// only accrue where subtrees aggregate more than one payload of data.
package costmodel

import "math"

// Tree is the routing tree's shape as the model needs it: for every
// non-root node that carries data, the number of member nodes in its
// subtree (including itself).
type Tree struct {
	// SubtreeMembers[i] counts member nodes in node i's subtree
	// (including i when i is a member); index 0 is the root and is
	// ignored (the base station is powered).
	SubtreeMembers []int
}

// Params describes the query and radio.
type Params struct {
	// Members is the total member-node count.
	Members int
	// TupleBytes is the complete (shipped) tuple's wire size.
	TupleBytes int
	// JoinAttrBytes is the raw join-attribute tuple's wire size.
	JoinAttrBytes int
	// QuadFactor is the quadtree's size relative to raw join-attribute
	// tuples (~0.5 on correlated data, §VI-B); use 1 for the raw
	// representation.
	QuadFactor float64
	// Fraction is the expected fraction of member nodes in the result.
	Fraction float64
	// FilterBytes is the encoded size of the global join filter; if 0
	// it is estimated from Fraction and the key sizes.
	FilterBytes int
	// Payload is the usable bytes per packet.
	Payload int
	// Dmax is the Treecut threshold.
	Dmax int
}

// packetsFor is the per-node cost kernel: a node forwarding `bytes`
// transmits this many packets.
func packetsFor(bytes float64, payload int) float64 {
	if bytes <= 0 {
		return 0
	}
	return math.Max(1, math.Ceil(bytes/float64(payload)))
}

// External predicts the external join's total packets: every node
// forwards its subtree's complete tuples.
func External(t Tree, p Params) float64 {
	var total float64
	for i := 1; i < len(t.SubtreeMembers); i++ {
		total += packetsFor(float64(t.SubtreeMembers[i]*p.TupleBytes), p.Payload)
	}
	return total
}

// filterBytes returns the configured or estimated filter size.
func filterBytes(p Params) float64 {
	if p.FilterBytes > 0 {
		return float64(p.FilterBytes)
	}
	keys := math.Max(1, p.Fraction*float64(p.Members))
	return keys * float64(p.JoinAttrBytes) * p.QuadFactor
}

// SENSCollect predicts the Join-Attribute-Collection packets: subtrees
// below the Treecut threshold ship complete tuples (one packet), larger
// ones ship the compact join-attribute structure.
func SENSCollect(t Tree, p Params) float64 {
	var total float64
	for i := 1; i < len(t.SubtreeMembers); i++ {
		sm := t.SubtreeMembers[i]
		if sm == 0 {
			continue
		}
		fullBytes := sm * p.TupleBytes
		if fullBytes <= p.Dmax {
			total++ // Treecut: one packet of complete tuples
			continue
		}
		jaBytes := float64(sm*p.JoinAttrBytes) * p.QuadFactor
		total += packetsFor(jaBytes, p.Payload)
	}
	return total
}

// SENSFilter predicts the Filter-Dissemination packets: a node
// broadcasts once when its subtree contains at least one matching
// member (Selective Filter Forwarding), carrying the filter pruned to
// the subtree's share.
func SENSFilter(t Tree, p Params) float64 {
	fb := filterBytes(p)
	var total float64
	for i := 1; i < len(t.SubtreeMembers); i++ {
		sm := t.SubtreeMembers[i]
		if sm == 0 {
			continue
		}
		// Treecut subtrees never receive the filter.
		if sm*p.TupleBytes <= p.Dmax {
			continue
		}
		pMatch := 1 - math.Pow(1-p.Fraction, float64(sm))
		// The pruned filter cannot exceed the subtree's own key volume.
		pruned := math.Min(fb, float64(sm)*float64(p.JoinAttrBytes)*p.QuadFactor)
		total += pMatch * packetsFor(pruned, p.Payload)
	}
	// The base station's own broadcast.
	if p.Fraction > 0 {
		total += packetsFor(fb, p.Payload)
	}
	return total
}

// SENSFinal predicts the Final-Result-Computation packets: nodes whose
// subtree holds matching members forward those complete tuples.
func SENSFinal(t Tree, p Params) float64 {
	var total float64
	for i := 1; i < len(t.SubtreeMembers); i++ {
		sm := t.SubtreeMembers[i]
		if sm == 0 || sm*p.TupleBytes <= p.Dmax {
			continue // treecut data travels with phase A; proxies sit higher
		}
		expect := p.Fraction * float64(sm)
		pMatch := 1 - math.Pow(1-p.Fraction, float64(sm))
		total += pMatch * packetsFor(expect*float64(p.TupleBytes), p.Payload)
	}
	return total
}

// SENS predicts SENS-Join's total packets.
func SENS(t Tree, p Params) float64 {
	return SENSCollect(t, p) + SENSFilter(t, p) + SENSFinal(t, p)
}

// Recommendation is the model's verdict.
type Recommendation struct {
	ExternalPackets float64
	SENSPackets     float64
	// UseSENS is true when the model predicts SENS-Join to be cheaper.
	UseSENS bool
	// BreakEvenFraction estimates the result fraction at which the two
	// methods cost the same on this tree (bisection over the model).
	BreakEvenFraction float64
}

// Advise compares the two general-purpose methods on the given tree and
// estimates the break-even fraction.
func Advise(t Tree, p Params) Recommendation {
	rec := Recommendation{
		ExternalPackets: External(t, p),
		SENSPackets:     SENS(t, p),
	}
	rec.UseSENS = rec.SENSPackets < rec.ExternalPackets
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		q := p
		q.Fraction = mid
		q.FilterBytes = 0 // re-estimate per fraction
		if SENS(t, q) < External(t, q) {
			lo = mid
		} else {
			hi = mid
		}
	}
	rec.BreakEvenFraction = (lo + hi) / 2
	return rec
}

// SubtreeMembersOf derives the model's tree shape from parent pointers
// and a member mask: SubtreeMembers[i] counts members at or below i.
func SubtreeMembersOf(parent []int, member []bool) Tree {
	n := len(parent)
	sm := make([]int, n)
	// Accumulate children into parents in order of decreasing depth.
	depth := make([]int, n)
	for i := 0; i < n; i++ {
		d, v := 0, i
		for v > 0 && parent[v] >= 0 {
			v = parent[v]
			d++
			if d > n {
				break // cycle guard
			}
		}
		depth[i] = d
	}
	// Sort by depth descending (counting sort over depths).
	maxd := 0
	for _, d := range depth {
		if d > maxd {
			maxd = d
		}
	}
	buckets := make([][]int, maxd+1)
	for i, d := range depth {
		buckets[d] = append(buckets[d], i)
	}
	for i := range sm {
		if member[i] {
			sm[i] = 1
		}
	}
	for d := maxd; d > 0; d-- {
		for _, v := range buckets[d] {
			if parent[v] >= 0 {
				sm[parent[v]] += sm[v]
			}
		}
	}
	return Tree{SubtreeMembers: sm}
}
