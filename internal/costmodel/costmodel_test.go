package costmodel

import (
	"math"
	"testing"
)

// star: root with k leaf chains is approximated here by explicit parent
// vectors for deterministic shape checks.
func chainTree(n int) Tree {
	parent := make([]int, n+1)
	member := make([]bool, n+1)
	parent[0] = -1
	for i := 1; i <= n; i++ {
		parent[i] = i - 1
		member[i] = true
	}
	return SubtreeMembersOf(parent, member)
}

func TestSubtreeMembersChain(t *testing.T) {
	tr := chainTree(5)
	// Node i (1-based on the chain) has 5-i+1 members below it.
	want := []int{5, 5, 4, 3, 2, 1}
	for i, w := range want {
		if tr.SubtreeMembers[i] != w {
			t.Fatalf("node %d: %d members, want %d", i, tr.SubtreeMembers[i], w)
		}
	}
}

func TestSubtreeMembersStar(t *testing.T) {
	// Root with 4 leaves, leaf 2 not a member.
	parent := []int{-1, 0, 0, 0, 0}
	member := []bool{false, true, false, true, true}
	tr := SubtreeMembersOf(parent, member)
	if tr.SubtreeMembers[0] != 3 {
		t.Fatalf("root members = %d, want 3", tr.SubtreeMembers[0])
	}
	if tr.SubtreeMembers[2] != 0 || tr.SubtreeMembers[1] != 1 {
		t.Fatalf("leaf counts wrong: %v", tr.SubtreeMembers)
	}
}

func params(members int, f float64) Params {
	return Params{
		Members:       members,
		TupleBytes:    6,
		JoinAttrBytes: 2,
		QuadFactor:    0.6,
		Fraction:      f,
		Payload:       40,
		Dmax:          30,
	}
}

func TestExternalChainExact(t *testing.T) {
	// On a 10-chain with 6-byte tuples and 40-byte payload: node at
	// chain position i forwards (11-i)*6 bytes.
	tr := chainTree(10)
	got := External(tr, params(10, 0.05))
	want := 0.0
	for i := 1; i <= 10; i++ {
		want += math.Max(1, math.Ceil(float64((10-i+1)*6)/40))
	}
	if got != want {
		t.Fatalf("External = %g, want %g", got, want)
	}
}

func TestSENSCheaperAtLowFraction(t *testing.T) {
	tr := chainTree(100)
	p := params(100, 0.02)
	if SENS(tr, p) >= External(tr, p) {
		t.Fatalf("model: SENS %g not below external %g at f=2%%", SENS(tr, p), External(tr, p))
	}
}

func TestSENSMoreExpensiveAtHighFraction(t *testing.T) {
	tr := chainTree(100)
	p := params(100, 0.95)
	if SENS(tr, p) <= External(tr, p) {
		t.Fatalf("model: SENS %g should exceed external %g at f=95%%", SENS(tr, p), External(tr, p))
	}
}

func TestSENSMonotoneInFraction(t *testing.T) {
	tr := chainTree(200)
	prev := -1.0
	for _, f := range []float64{0.01, 0.05, 0.1, 0.3, 0.6, 0.9} {
		c := SENS(tr, params(200, f))
		if c < prev {
			t.Fatalf("model cost decreased with fraction at %g", f)
		}
		prev = c
	}
	// External is fraction independent.
	if External(tr, params(200, 0.01)) != External(tr, params(200, 0.9)) {
		t.Fatal("external model must not depend on the fraction")
	}
}

func TestAdviseBreakEven(t *testing.T) {
	tr := chainTree(150)
	rec := Advise(tr, params(150, 0.05))
	if !rec.UseSENS {
		t.Fatal("model should pick SENS-Join at 5%")
	}
	if rec.BreakEvenFraction < 0.2 || rec.BreakEvenFraction > 1.0 {
		t.Fatalf("break-even %.2f implausible", rec.BreakEvenFraction)
	}
	// Above the break-even the recommendation flips.
	rec2 := Advise(tr, params(150, math.Min(0.99, rec.BreakEvenFraction+0.1)))
	if rec2.UseSENS && rec2.SENSPackets < rec2.ExternalPackets {
		// Allowed only if still genuinely cheaper (break-even is a model
		// estimate); assert consistency instead of a fixed verdict.
		if rec2.SENSPackets >= rec2.ExternalPackets {
			t.Fatal("inconsistent recommendation")
		}
	}
}

func TestTreecutFloor(t *testing.T) {
	// A star of leaves: every subtree is one member = 6 bytes <= Dmax,
	// so collection is exactly one packet per leaf.
	parent := make([]int, 51)
	member := make([]bool, 51)
	parent[0] = -1
	for i := 1; i <= 50; i++ {
		parent[i] = 0
		member[i] = true
	}
	tr := SubtreeMembersOf(parent, member)
	if got := SENSCollect(tr, params(50, 0.1)); got != 50 {
		t.Fatalf("star collection = %g, want 50 (one packet per leaf)", got)
	}
}
