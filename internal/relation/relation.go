// Package relation models the database abstraction of a sensor network.
//
// Following the paper (§III), the network is seen as one or more sensor
// relations: one attribute per sensor of a node plus the node coordinates,
// and one tuple per node. A homogeneous network has a single relation; in
// heterogeneous networks groups of nodes form different relations.
// Attribute definitions carry the quantization metadata ([min,max] range
// and resolution) that the base station disseminates independently of any
// query (§V-B, "Specifying Ranges and Resolution").
package relation

import (
	"fmt"

	"sensjoin/internal/field"
	"sensjoin/internal/geom"
	"sensjoin/internal/topology"
)

// AttrBytes is the wire size of one attribute value. The paper assumes
// two bytes per attribute (§IV-B).
const AttrBytes = 2

// AttrDef describes one attribute and its quantization.
type AttrDef struct {
	// Name is the attribute name (e.g. "temp", "x").
	Name string
	// Min and Max bound the expected value range.
	Min, Max float64
	// Res is the quantization step (paper: 0.1 degC for temperature,
	// 1 m for coordinates).
	Res float64
}

// Schema is a sensor relation's shape.
type Schema struct {
	// Name is the relation name as used in queries (e.g. "Sensors").
	Name string
	// Attrs lists the attributes in order.
	Attrs []AttrDef
}

// AttrIndex returns the index of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Attr returns the definition of the named attribute.
func (s *Schema) Attr(name string) (AttrDef, error) {
	if i := s.AttrIndex(name); i >= 0 {
		return s.Attrs[i], nil
	}
	return AttrDef{}, fmt.Errorf("relation: %s has no attribute %q", s.Name, name)
}

// TupleBytes returns the wire size of a tuple restricted to n attributes.
func TupleBytes(n int) int { return n * AttrBytes }

// Tuple is one node's row: values aligned with the schema's attributes.
type Tuple struct {
	Node topology.NodeID
	Vals []float64
}

// Value returns the tuple's value of the attribute at schema index i.
func (t Tuple) Value(i int) float64 { return t.Vals[i] }

// Snapshot is the materialized state of one relation at one instant.
type Snapshot struct {
	Schema *Schema
	// Tuples holds one tuple per member node, ordered by node id.
	Tuples []Tuple
	// Time is the sampling instant.
	Time   float64
	byNode map[topology.NodeID]int
}

// ByNode returns the tuple of the given node, if the node is a member.
func (s *Snapshot) ByNode(id topology.NodeID) (Tuple, bool) {
	if s.byNode == nil {
		s.byNode = make(map[topology.NodeID]int, len(s.Tuples))
		for i, t := range s.Tuples {
			s.byNode[t.Node] = i
		}
	}
	i, ok := s.byNode[id]
	if !ok {
		return Tuple{}, false
	}
	return s.Tuples[i], true
}

// Membership decides which relations a node belongs to. The default (nil)
// is a homogeneous network: every sensor node belongs to every relation.
// The base station (node 0) never contributes a tuple.
type Membership func(id topology.NodeID, rel string) bool

// Sample reads the environment at time t for every member node and
// returns the relation's snapshot. As required by the paper, each sensor
// is read exactly once per query execution; callers sample once and pass
// the snapshot to the join method.
func Sample(dep *topology.Deployment, env *field.Environment, schema *Schema, member Membership, t float64) *Snapshot {
	snap := &Snapshot{Schema: schema, Time: t}
	for i := 1; i < dep.N(); i++ {
		id := topology.NodeID(i)
		if member != nil && !member(id, schema.Name) {
			continue
		}
		tu := Tuple{Node: id, Vals: make([]float64, len(schema.Attrs))}
		for j, a := range schema.Attrs {
			tu.Vals[j] = env.Read(a.Name, dep.Pos[i], t)
		}
		snap.Tuples = append(snap.Tuples, tu)
	}
	return snap
}

// StandardSchema returns the default homogeneous relation "Sensors" with
// the quantization settings used throughout the experiments; coordinate
// ranges are derived from the deployment area.
func StandardSchema(area geom.Rect) *Schema {
	return &Schema{
		Name: "Sensors",
		Attrs: []AttrDef{
			{Name: "temp", Min: 0, Max: 40, Res: 0.1},
			{Name: "hum", Min: 0, Max: 100, Res: 0.5},
			{Name: "pres", Min: 990, Max: 1040, Res: 0.25},
			{Name: "light", Min: 0, Max: 1500, Res: 5},
			{Name: "x", Min: area.MinX, Max: area.MaxX, Res: 1},
			{Name: "y", Min: area.MinY, Max: area.MaxY, Res: 1},
		},
	}
}

// Catalog maps relation names to schemas.
type Catalog map[string]*Schema

// Lookup returns the schema for name.
func (c Catalog) Lookup(name string) (*Schema, error) {
	if s, ok := c[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("relation: unknown relation %q", name)
}
