package relation

import (
	"testing"

	"sensjoin/internal/field"
	"sensjoin/internal/geom"
	"sensjoin/internal/topology"
)

func testDeployment(t *testing.T) *topology.Deployment {
	t.Helper()
	d, err := topology.Generate(topology.Config{
		Nodes: 50, Area: geom.Square(200), Range: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSchemaLookup(t *testing.T) {
	s := StandardSchema(geom.Square(1050))
	if s.Name != "Sensors" {
		t.Fatalf("Name = %q", s.Name)
	}
	if i := s.AttrIndex("temp"); i != 0 {
		t.Fatalf("AttrIndex(temp) = %d", i)
	}
	if i := s.AttrIndex("nope"); i != -1 {
		t.Fatalf("AttrIndex(nope) = %d, want -1", i)
	}
	a, err := s.Attr("x")
	if err != nil {
		t.Fatal(err)
	}
	if a.Min != 0 || a.Max != 1050 || a.Res != 1 {
		t.Fatalf("x quantization = %+v", a)
	}
	if _, err := s.Attr("bogus"); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
}

func TestTupleBytes(t *testing.T) {
	if TupleBytes(5) != 10 {
		t.Fatalf("TupleBytes(5) = %d, want 10 (2 bytes per attribute)", TupleBytes(5))
	}
	if TupleBytes(0) != 0 {
		t.Fatal("TupleBytes(0) != 0")
	}
}

func TestSampleHomogeneous(t *testing.T) {
	d := testDeployment(t)
	env := field.StandardEnvironment(d.Area, 42)
	s := StandardSchema(d.Area)
	snap := Sample(d, env, s, nil, 0)
	if len(snap.Tuples) != d.N()-1 {
		t.Fatalf("snapshot has %d tuples, want %d (base station excluded)", len(snap.Tuples), d.N()-1)
	}
	// Tuples ordered by node id, values aligned with schema.
	xi := s.AttrIndex("x")
	yi := s.AttrIndex("y")
	for i, tu := range snap.Tuples {
		if i > 0 && tu.Node <= snap.Tuples[i-1].Node {
			t.Fatal("tuples not ordered by node id")
		}
		p := d.Pos[tu.Node]
		if tu.Value(xi) != p.X || tu.Value(yi) != p.Y {
			t.Fatalf("node %d coordinates wrong: (%g,%g) vs %+v", tu.Node, tu.Value(xi), tu.Value(yi), p)
		}
	}
}

func TestSampleMembership(t *testing.T) {
	d := testDeployment(t)
	env := field.StandardEnvironment(d.Area, 42)
	s := StandardSchema(d.Area)
	// Odd node ids only.
	member := func(id topology.NodeID, rel string) bool { return id%2 == 1 }
	snap := Sample(d, env, s, member, 0)
	for _, tu := range snap.Tuples {
		if tu.Node%2 != 1 {
			t.Fatalf("node %d sampled despite membership filter", tu.Node)
		}
	}
	if len(snap.Tuples) == 0 {
		t.Fatal("no tuples sampled")
	}
}

func TestSampleDeterministicAndTimeDependent(t *testing.T) {
	d := testDeployment(t)
	env := field.StandardEnvironment(d.Area, 42)
	s := StandardSchema(d.Area)
	a := Sample(d, env, s, nil, 0)
	b := Sample(d, env, s, nil, 0)
	ti := s.AttrIndex("temp")
	for i := range a.Tuples {
		if a.Tuples[i].Value(ti) != b.Tuples[i].Value(ti) {
			t.Fatal("sampling not deterministic")
		}
	}
	c := Sample(d, env, s, nil, 100)
	diff := false
	for i := range a.Tuples {
		if a.Tuples[i].Value(ti) != c.Tuples[i].Value(ti) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("drifting field should change between t=0 and t=100")
	}
}

func TestByNode(t *testing.T) {
	d := testDeployment(t)
	env := field.StandardEnvironment(d.Area, 42)
	s := StandardSchema(d.Area)
	snap := Sample(d, env, s, nil, 0)
	want := snap.Tuples[3]
	got, ok := snap.ByNode(want.Node)
	if !ok || got.Node != want.Node {
		t.Fatalf("ByNode(%d) failed", want.Node)
	}
	if _, ok := snap.ByNode(topology.BaseStation); ok {
		t.Fatal("base station must not have a tuple")
	}
}

func TestCatalog(t *testing.T) {
	s := StandardSchema(geom.Square(100))
	c := Catalog{"Sensors": s}
	got, err := c.Lookup("Sensors")
	if err != nil || got != s {
		t.Fatalf("Lookup failed: %v", err)
	}
	if _, err := c.Lookup("Other"); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}
