package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCountersAndFilters(t *testing.T) {
	c := NewCollector(3)
	c.OnTx(1, "collect", 2, 50)
	c.OnTx(1, "filter", 1, 10)
	c.OnTx(2, "collect", 3, 100)
	c.OnRx(0, "collect", 5, 150)

	if p, b := c.NodeTx(1); p != 3 || b != 60 {
		t.Fatalf("NodeTx(1) = %d/%d, want 3/60", p, b)
	}
	if p, _ := c.NodeTx(1, "collect"); p != 2 {
		t.Fatalf("NodeTx(1, collect) = %d, want 2", p)
	}
	if p, b := c.NodeRx(0, "collect"); p != 5 || b != 150 {
		t.Fatalf("NodeRx = %d/%d", p, b)
	}
	if tot := c.TotalTx(); tot != 6 {
		t.Fatalf("TotalTx = %d, want 6", tot)
	}
	if tot := c.TotalTx("collect"); tot != 5 {
		t.Fatalf("TotalTx(collect) = %d, want 5", tot)
	}
	if b := c.TotalTxBytes("filter"); b != 10 {
		t.Fatalf("TotalTxBytes(filter) = %d, want 10", b)
	}
}

func TestPhases(t *testing.T) {
	c := NewCollector(2)
	c.OnTx(0, "b", 1, 1)
	c.OnTx(1, "a", 1, 1)
	got := c.Phases()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Phases = %v, want [a b]", got)
	}
}

func TestPerNodeAndMax(t *testing.T) {
	c := NewCollector(4)
	c.OnTx(0, "p", 100, 0) // base station: must be excluded from Max/TopK
	c.OnTx(1, "p", 5, 0)
	c.OnTx(2, "p", 9, 0)
	c.OnTx(3, "p", 1, 0)
	per := c.PerNodeTx()
	if per[2] != 9 || per[0] != 100 {
		t.Fatalf("PerNodeTx = %v", per)
	}
	node, load := c.MaxTx()
	if node != 2 || load != 9 {
		t.Fatalf("MaxTx = node %d load %d, want node 2 load 9", node, load)
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0] != 9 || top[1] != 5 {
		t.Fatalf("TopK(2) = %v, want [9 5]", top)
	}
	if got := c.TopK(99); len(got) != 3 {
		t.Fatalf("TopK(99) should clamp to %d sensor nodes, got %d", 3, len(got))
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(2)
	c.OnTx(1, "p", 5, 10)
	c.Reset()
	if c.TotalTx() != 0 || len(c.Phases()) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestEnergyModel(t *testing.T) {
	c := NewCollector(3)
	c.OnTx(1, "p", 2, 100)
	c.OnRx(1, "p", 1, 40)
	m := EnergyModel{TxPerPacketJ: 10, TxPerByteJ: 1, RxPerPacketJ: 5, RxPerByteJ: 0.5}
	want := 2.0*10 + 100*1 + 1*5 + 40*0.5
	if got := c.NodeEnergy(m, 1); got != want {
		t.Fatalf("NodeEnergy = %g, want %g", got, want)
	}
	// Base station excluded from TotalEnergy.
	c.OnTx(0, "p", 1000, 0)
	if got := c.TotalEnergy(m); got != want {
		t.Fatalf("TotalEnergy = %g, want %g (base station excluded)", got, want)
	}
	cc := CC2420Model()
	if cc.TxPerPacketJ <= 0 || cc.RxPerPacketJ <= 0 {
		t.Fatal("CC2420Model must have positive per-packet costs")
	}
}

func TestPhaseTable(t *testing.T) {
	c := NewCollector(2)
	c.OnTx(1, "collect", 2, 80)
	out := c.PhaseTable()
	if !strings.Contains(out, "collect") || !strings.Contains(out, "2 packets") {
		t.Fatalf("PhaseTable output unexpected:\n%s", out)
	}
}

func TestLoadByDescendants(t *testing.T) {
	perNode := []int64{999, 1, 3, 10, 20} // node 0 = base station, ignored
	desc := []int{100, 0, 1, 10, 50}
	mean, count := LoadByDescendants(perNode, desc, []int{1, 20, 1000})
	if count[0] != 2 || count[1] != 1 || count[2] != 1 {
		t.Fatalf("counts = %v", count)
	}
	if mean[0] != 2 { // (1+3)/2
		t.Fatalf("bin 0 mean = %g, want 2", mean[0])
	}
	if mean[1] != 10 || mean[2] != 20 {
		t.Fatalf("means = %v", mean)
	}
}

func TestLifetimeRounds(t *testing.T) {
	perRound := []float64{99, 0.5, 2.0, 1.0} // node 0 = base station, ignored
	rounds, dead := LifetimeRounds(perRound, 10)
	if dead != 2 {
		t.Fatalf("first dead = %d, want 2 (highest drain)", dead)
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d, want 5", rounds)
	}
	rounds, _ = LifetimeRounds([]float64{0, 0, 0}, 10)
	if rounds < 1<<29 {
		t.Fatal("zero drain should yield effectively infinite lifetime")
	}
}

func TestPerNodeEnergy(t *testing.T) {
	c := NewCollector(3)
	c.OnTx(1, "p", 2, 100)
	m := EnergyModel{TxPerPacketJ: 1, TxPerByteJ: 0.01}
	e := c.PerNodeEnergy(m)
	if len(e) != 3 {
		t.Fatalf("len = %d", len(e))
	}
	if e[1] != 3 || e[0] != 0 || e[2] != 0 {
		t.Fatalf("energies = %v", e)
	}
}

func TestLoadByDescendantsOverflowBin(t *testing.T) {
	// Nodes beyond the last boundary land in the trailing overflow bin
	// instead of silently vanishing from every series.
	perNode := []int64{999, 4, 8, 100}
	desc := []int{50, 1, 2, 30} // node 3 exceeds the last boundary (10)
	mean, count := LoadByDescendants(perNode, desc, []int{1, 10})
	if len(mean) != 3 || len(count) != 3 {
		t.Fatalf("want len(boundaries)+1 = 3 bins, got %d/%d", len(mean), len(count))
	}
	if count[0] != 1 || count[1] != 1 || count[2] != 1 {
		t.Fatalf("counts = %v", count)
	}
	if mean[2] != 100 {
		t.Fatalf("overflow bin mean = %g, want 100", mean[2])
	}
	total := count[0] + count[1] + count[2]
	if total != len(perNode)-1 {
		t.Fatalf("binned %d of %d sensor nodes", total, len(perNode)-1)
	}
}

func TestSnapshotDeepCopy(t *testing.T) {
	c := NewCollector(2)
	c.OnTx(1, "p", 2, 20)
	c.OnRx(1, "p", 1, 10)
	s := c.Snapshot()
	c.OnTx(1, "p", 5, 50) // must not leak into the snapshot
	if got := s.Tx(1, "p"); got.Packets != 2 || got.Bytes != 20 {
		t.Fatalf("snapshot tx = %+v, want {2 20}", got)
	}
	if got := s.Rx(1, "p"); got.Packets != 1 || got.Bytes != 10 {
		t.Fatalf("snapshot rx = %+v, want {1 10}", got)
	}
	if got := s.Tx(0, "p"); got.Packets != 0 {
		t.Fatalf("untouched node has tx %+v", got)
	}
	if s.N() != 2 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestMaxLoadNode(t *testing.T) {
	if n, v := MaxLoadNode([]float64{99, 1, 7, 3}); n != 2 || v != 7 {
		t.Fatalf("MaxLoadNode = (%d, %g), want (2, 7)", n, v)
	}
	// Base station at index 0 never wins, even when largest.
	if n, _ := MaxLoadNode([]float64{1000, 1}); n != 1 {
		t.Fatalf("base station won: node %d", n)
	}
	if n, v := MaxLoadNode([]float64{5}); n != -1 || v != 0 {
		t.Fatalf("no sensors: got (%d, %g)", n, v)
	}
	if n, v := MaxLoadNode(nil); n != -1 || v != 0 {
		t.Fatalf("nil: got (%d, %g)", n, v)
	}
	// Ties resolve to the lowest node id (deterministic).
	if n, _ := MaxLoadNode([]float64{0, 4, 4}); n != 1 {
		t.Fatalf("tie resolved to node %d, want 1", n)
	}
}

func TestPercentiles(t *testing.T) {
	// Sensors 1..5 carry 10,20,30,40,50.
	load := []float64{0, 10, 20, 30, 40, 50}
	got := Percentiles(load, 0, 0.5, 1)
	if got[0] != 10 || got[1] != 30 || got[2] != 50 {
		t.Fatalf("Percentiles = %v, want [10 30 50]", got)
	}
	// Linear interpolation between order statistics.
	if q := Percentiles(load, 0.25)[0]; q != 20 {
		t.Fatalf("p25 = %g, want 20", q)
	}
	if q := Percentiles(load, 0.125)[0]; q != 15 {
		t.Fatalf("p12.5 = %g, want 15", q)
	}
	// Unsorted input sorts internally and does not mutate the caller's slice.
	shuffled := []float64{0, 50, 10, 40, 20, 30}
	if q := Percentiles(shuffled, 0.5)[0]; q != 30 {
		t.Fatalf("unsorted median = %g, want 30", q)
	}
	if shuffled[1] != 50 {
		t.Fatal("Percentiles mutated its input")
	}
	// No sensor nodes: NaN.
	for _, v := range Percentiles([]float64{7}, 0.5, 0.9) {
		if !math.IsNaN(v) {
			t.Fatalf("empty percentile = %g, want NaN", v)
		}
	}
}

func TestGini(t *testing.T) {
	// Perfectly even load: 0.
	if g := Gini([]float64{0, 5, 5, 5, 5}); g != 0 {
		t.Fatalf("even Gini = %g, want 0", g)
	}
	// All load on one of n nodes: (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 0, 12}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %g, want 0.75", g)
	}
	// 1,2,3,4 has a known Gini of 0.25.
	if g := Gini([]float64{9, 1, 2, 3, 4}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini(1..4) = %g, want 0.25", g)
	}
	// Degenerate inputs.
	if g := Gini([]float64{1, 2}); g != 0 {
		t.Fatalf("single sensor Gini = %g, want 0", g)
	}
	if g := Gini([]float64{0, 0, 0}); g != 0 {
		t.Fatalf("zero-load Gini = %g, want 0", g)
	}
	// Base station excluded: its huge load must not register.
	if g := Gini([]float64{1e9, 5, 5}); g != 0 {
		t.Fatalf("base station influenced Gini: %g", g)
	}
}
