// Package stats accounts for communication costs.
//
// The paper's evaluation metric is the number of packet transmissions,
// reported overall, per node, and broken down by protocol step (§VI). The
// Collector records transmissions and receptions per node and per phase
// label; summaries answer the questions the paper's figures ask: total
// transmissions per method (Fig. 10, 12-14, 16), per-node load versus
// descendant count and the most-loaded nodes (Fig. 11), and per-step
// breakdowns (Fig. 15). An energy model converts counts to Joules for
// users who want hardware-specific figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sensjoin/internal/topology"
)

// Counter accumulates packets and bytes.
type Counter struct {
	Packets int64
	Bytes   int64
}

// Add accumulates other into c.
func (c *Counter) Add(packets, bytes int) {
	c.Packets += int64(packets)
	c.Bytes += int64(bytes)
}

// Collector implements netsim.Accountant (and its reliable-transport
// extension netsim.ReliabilityAccountant): per-node, per-phase counters.
// Retransmissions and ACKs are always also charged through OnTx — the
// retx/ack counters break the reliability overhead out of the totals,
// they never add to them.
//
// Concurrency: all state is strictly per node. Charges to one node only
// ever touch that node's maps, which is what lets the sharded simulator
// charge nodes from parallel region workers — OnTx runs on the sender's
// worker, OnRx on the receiver's — without locks. There is deliberately
// no collector-global mutable state (Phases derives the label set from
// the per-node maps on demand). Per-node maps are also allocated lazily
// on first charge: at million-node scale, eager allocation of four maps
// per node is most of the collector's footprint.
type Collector struct {
	n    int
	tx   []map[string]*Counter
	rx   []map[string]*Counter
	retx []map[string]*Counter
	ack  []map[string]*Counter
}

// NewCollector returns a collector for n nodes.
func NewCollector(n int) *Collector {
	return &Collector{
		n:    n,
		tx:   make([]map[string]*Counter, n),
		rx:   make([]map[string]*Counter, n),
		retx: make([]map[string]*Counter, n),
		ack:  make([]map[string]*Counter, n),
	}
}

// OnTx records a transmission by node.
func (c *Collector) OnTx(node topology.NodeID, phase string, packets, bytes int) {
	c.counter(c.tx, node, phase).Add(packets, bytes)
}

// OnRx records a reception at node.
func (c *Collector) OnRx(node topology.NodeID, phase string, packets, bytes int) {
	c.counter(c.rx, node, phase).Add(packets, bytes)
}

// OnRetx records a reliable-transport retransmission by node (also
// charged through OnTx).
func (c *Collector) OnRetx(node topology.NodeID, phase string, packets, bytes int) {
	c.counter(c.retx, node, phase).Add(packets, bytes)
}

// OnAck records a link-layer acknowledgement transmitted by node (also
// charged through OnTx).
func (c *Collector) OnAck(node topology.NodeID, phase string, packets, bytes int) {
	c.counter(c.ack, node, phase).Add(packets, bytes)
}

func (c *Collector) counter(side []map[string]*Counter, node topology.NodeID, phase string) *Counter {
	m := side[node]
	if m == nil {
		m = make(map[string]*Counter, 4)
		side[node] = m
	}
	ctr := m[phase]
	if ctr == nil {
		ctr = &Counter{}
		m[phase] = ctr
	}
	return ctr
}

// Reset clears all counters.
func (c *Collector) Reset() {
	for i := range c.tx {
		c.tx[i] = nil
		c.rx[i] = nil
		c.retx[i] = nil
		c.ack[i] = nil
	}
}

// Phases returns the phase labels seen, sorted. The set is the union
// over every node's per-side maps; every charge creates its phase entry,
// so nothing is missed.
func (c *Collector) Phases() []string {
	seen := make(map[string]struct{}, 8)
	for _, side := range [][]map[string]*Counter{c.tx, c.rx, c.retx, c.ack} {
		for _, m := range side {
			for p := range m {
				seen[p] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// N returns the node count.
func (c *Collector) N() int { return c.n }

// match reports whether phase is selected by the filter: an empty filter
// selects everything; otherwise the phase must equal one of the entries.
func match(phase string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == phase {
			return true
		}
	}
	return false
}

// NodeTx returns the transmitted (packets, bytes) of node over the given
// phases (all phases when none given).
func (c *Collector) NodeTx(node topology.NodeID, phases ...string) (int64, int64) {
	var p, b int64
	for ph, ctr := range c.tx[node] {
		if match(ph, phases) {
			p += ctr.Packets
			b += ctr.Bytes
		}
	}
	return p, b
}

// NodeRx returns the received (packets, bytes) of node over the given
// phases.
func (c *Collector) NodeRx(node topology.NodeID, phases ...string) (int64, int64) {
	var p, b int64
	for ph, ctr := range c.rx[node] {
		if match(ph, phases) {
			p += ctr.Packets
			b += ctr.Bytes
		}
	}
	return p, b
}

// TotalRetx sums retransmitted packets over all nodes for the given
// phases — the reliability overhead already contained in TotalTx.
func (c *Collector) TotalRetx(phases ...string) int64 {
	return c.totalSide(c.retx, phases)
}

// TotalAck sums acknowledgement packets over all nodes for the given
// phases — like TotalRetx, a breakdown of TotalTx, not an addition.
func (c *Collector) TotalAck(phases ...string) int64 {
	return c.totalSide(c.ack, phases)
}

func (c *Collector) totalSide(side []map[string]*Counter, phases []string) int64 {
	var p int64
	for i := 0; i < c.n; i++ {
		for ph, ctr := range side[i] {
			if match(ph, phases) {
				p += ctr.Packets
			}
		}
	}
	return p
}

// TotalTx sums transmitted packets over all nodes for the given phases.
func (c *Collector) TotalTx(phases ...string) int64 {
	var p int64
	for i := 0; i < c.n; i++ {
		pp, _ := c.NodeTx(topology.NodeID(i), phases...)
		p += pp
	}
	return p
}

// TotalTxBytes sums transmitted bytes over all nodes for the given phases.
func (c *Collector) TotalTxBytes(phases ...string) int64 {
	var b int64
	for i := 0; i < c.n; i++ {
		_, bb := c.NodeTx(topology.NodeID(i), phases...)
		b += bb
	}
	return b
}

// PerNodeTx returns transmitted packets per node for the given phases.
func (c *Collector) PerNodeTx(phases ...string) []int64 {
	out := make([]int64, c.n)
	for i := range out {
		out[i], _ = c.NodeTx(topology.NodeID(i), phases...)
	}
	return out
}

// MaxTx returns the highest per-node transmitted packet count and the
// node that incurred it, excluding the base station (it is powered).
func (c *Collector) MaxTx(phases ...string) (topology.NodeID, int64) {
	var best topology.NodeID
	var bestP int64 = -1
	for i := 1; i < c.n; i++ {
		p, _ := c.NodeTx(topology.NodeID(i), phases...)
		if p > bestP {
			bestP, best = p, topology.NodeID(i)
		}
	}
	return best, bestP
}

// TopK returns the k highest per-node transmitted packet counts in
// descending order, excluding the base station.
func (c *Collector) TopK(k int, phases ...string) []int64 {
	loads := make([]int64, 0, c.n-1)
	for i := 1; i < c.n; i++ {
		p, _ := c.NodeTx(topology.NodeID(i), phases...)
		loads = append(loads, p)
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i] > loads[j] })
	if k > len(loads) {
		k = len(loads)
	}
	return loads[:k]
}

// Snapshot is a deep copy of a Collector's counters at one instant.
// Audits snapshot before and after an execution and reconcile the delta
// against the execution's trace journal, bit-exact.
type Snapshot struct {
	n      int
	tx, rx []map[string]Counter
	phases []string
}

// Snapshot deep-copies the current counters.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		n:      c.n,
		tx:     make([]map[string]Counter, c.n),
		rx:     make([]map[string]Counter, c.n),
		phases: c.Phases(),
	}
	for i := 0; i < c.n; i++ {
		s.tx[i] = copyCounters(c.tx[i])
		s.rx[i] = copyCounters(c.rx[i])
	}
	return s
}

func copyCounters(m map[string]*Counter) map[string]Counter {
	out := make(map[string]Counter, len(m))
	for ph, ctr := range m {
		out[ph] = *ctr
	}
	return out
}

// N returns the node count.
func (s Snapshot) N() int { return s.n }

// Phases returns the phase labels seen at snapshot time, sorted.
func (s Snapshot) Phases() []string { return s.phases }

// Tx returns node's transmitted counter for one phase.
func (s Snapshot) Tx(node topology.NodeID, phase string) Counter { return s.tx[node][phase] }

// Rx returns node's received counter for one phase.
func (s Snapshot) Rx(node topology.NodeID, phase string) Counter { return s.rx[node][phase] }

// EnergyModel converts packet/byte counts to Joules with a linear model.
type EnergyModel struct {
	TxPerPacketJ float64 // fixed cost per transmitted packet
	TxPerByteJ   float64 // marginal cost per transmitted byte
	RxPerPacketJ float64 // fixed cost per received packet
	RxPerByteJ   float64 // marginal cost per received byte
}

// CC2420Model returns rough constants for a CC2420-class 802.15.4 radio
// at 250 kbit/s and ~0 dBm: dominated by fixed per-packet overhead, as the
// paper argues (footnote 1).
func CC2420Model() EnergyModel {
	return EnergyModel{
		TxPerPacketJ: 165e-6,
		TxPerByteJ:   1.8e-6,
		RxPerPacketJ: 180e-6,
		RxPerByteJ:   2.0e-6,
	}
}

// NodeEnergy returns the energy in Joules spent by node under m.
func (c *Collector) NodeEnergy(m EnergyModel, node topology.NodeID, phases ...string) float64 {
	tp, tb := c.NodeTx(node, phases...)
	rp, rb := c.NodeRx(node, phases...)
	return float64(tp)*m.TxPerPacketJ + float64(tb)*m.TxPerByteJ +
		float64(rp)*m.RxPerPacketJ + float64(rb)*m.RxPerByteJ
}

// TotalEnergy returns the summed energy over all sensor nodes (the base
// station is powered and excluded).
func (c *Collector) TotalEnergy(m EnergyModel, phases ...string) float64 {
	var e float64
	for i := 1; i < c.n; i++ {
		e += c.NodeEnergy(m, topology.NodeID(i), phases...)
	}
	return e
}

// PhaseTable formats per-phase total transmissions as aligned text rows.
func (c *Collector) PhaseTable() string {
	var b strings.Builder
	for _, ph := range c.Phases() {
		fmt.Fprintf(&b, "%-24s %8d packets %10d bytes\n", ph, c.TotalTx(ph), c.TotalTxBytes(ph))
	}
	return b.String()
}

// LifetimeRounds estimates how many executions of a workload the network
// survives: given each node's energy per round and a battery budget, it
// returns the number of complete rounds until the first sensor node
// depletes, and which node dies first. The paper's motivation ("when the
// energy of the nodes near the root is depleted, the network ceases
// operation", §VI) makes the most loaded node the lifetime bottleneck.
func LifetimeRounds(perRoundJ []float64, batteryJ float64) (rounds int, firstDead int) {
	firstDead = -1
	max := 0.0
	for i := 1; i < len(perRoundJ); i++ { // node 0 is the powered base station
		if perRoundJ[i] > max {
			max = perRoundJ[i]
			firstDead = i
		}
	}
	if max <= 0 {
		return 1 << 30, firstDead
	}
	return int(batteryJ / max), firstDead
}

// PerNodeEnergy returns each node's energy in Joules under m for the
// given phases.
func (c *Collector) PerNodeEnergy(m EnergyModel, phases ...string) []float64 {
	out := make([]float64, c.n)
	for i := range out {
		out[i] = c.NodeEnergy(m, topology.NodeID(i), phases...)
	}
	return out
}

// MaxLoadNode returns the most-loaded sensor node and its load, given a
// per-node load slice (packets or Joules). The base station at index 0
// is powered and excluded, matching Collector.MaxTx. Returns (-1, 0)
// when there are no sensor nodes.
func MaxLoadNode(load []float64) (node int, max float64) {
	node = -1
	for i := 1; i < len(load); i++ {
		if node == -1 || load[i] > max {
			node, max = i, load[i]
		}
	}
	return node, max
}

// Percentiles returns the q-quantiles (each in [0,1]) of the sensor-node
// loads, linearly interpolated over the sorted values. The base station
// at index 0 is excluded. NaN entries are returned when there are no
// sensor nodes.
func Percentiles(load []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(load) < 2 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), load[1:]...)
	sort.Float64s(sorted)
	n := len(sorted)
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[n-1]
			continue
		}
		pos := q * float64(n-1)
		lo := int(pos)
		frac := pos - float64(lo)
		out[i] = sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
	}
	return out
}

// Gini returns the Gini coefficient of the sensor-node loads (base
// station at index 0 excluded): 0 means every node carries the same
// load, values approaching 1 mean the load concentrates on few nodes —
// the imbalance the paper's Fig. 11 hotspot discussion is about.
// Returns 0 for fewer than two sensor nodes or an all-zero load.
func Gini(load []float64) float64 {
	if len(load) < 3 { // base station + at least 2 sensors
		return 0
	}
	sorted := append([]float64(nil), load[1:]...)
	sort.Float64s(sorted)
	n := len(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum <= 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// LoadByDescendants bins per-node transmitted packets by the node's
// descendant count in the routing tree; used for Fig. 11-style series.
// desc[i] is the number of descendants of node i; boundaries are the
// inclusive upper edges of the bins. Nodes whose descendant count
// exceeds the last boundary land in a trailing overflow bin — the
// returned slices have len(boundaries)+1 entries — instead of silently
// vanishing from every series.
func LoadByDescendants(perNode []int64, desc []int, boundaries []int) (mean []float64, count []int) {
	nbins := len(boundaries) + 1
	mean = make([]float64, nbins)
	count = make([]int, nbins)
	sums := make([]float64, nbins)
	for i := 1; i < len(perNode); i++ { // skip base station
		b := len(boundaries) // overflow bin
		for j, up := range boundaries {
			if desc[i] <= up {
				b = j
				break
			}
		}
		sums[b] += float64(perNode[i])
		count[b]++
	}
	for b := range sums {
		if count[b] > 0 {
			mean[b] = sums[b] / float64(count[b])
		}
	}
	return mean, count
}
