package quadtree

import (
	"math/rand"
	"testing"

	"sensjoin/internal/zorder"
)

func benchSetup(b *testing.B, n int, clustered bool) (*Codec, []zorder.Key, []zorder.Key) {
	b.Helper()
	temp, _ := zorder.NewDim("temp", 0, 40, 0.1)
	x, _ := zorder.NewDim("x", 0, 1050, 1)
	y, _ := zorder.NewDim("y", 0, 1050, 1)
	g, err := zorder.NewGrid(2, []zorder.Dim{temp, x, y})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCodec(g.Levels())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := NormalizeKeys(randomKeys(g, rng, n, clustered))
	bb := NormalizeKeys(randomKeys(g, rng, n, clustered))
	return c, a, bb
}

func BenchmarkEncode1500Clustered(b *testing.B) {
	c, keys, _ := benchSetup(b, 1500, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(keys)
	}
	e := c.Encode(keys)
	b.ReportMetric(float64(e.ByteLen())/float64(len(keys)), "bytes/key")
}

func BenchmarkEncode1500Uniform(b *testing.B) {
	c, keys, _ := benchSetup(b, 1500, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(keys)
	}
	e := c.Encode(keys)
	b.ReportMetric(float64(e.ByteLen())/float64(len(keys)), "bytes/key")
}

func BenchmarkDecode1500(b *testing.B) {
	c, keys, _ := benchSetup(b, 1500, true)
	e := c.Encode(keys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnion(b *testing.B) {
	c, ka, kb := benchSetup(b, 750, true)
	ea, eb := c.Encode(ka), c.Encode(kb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Union(ea, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntersect(b *testing.B) {
	c, ka, kb := benchSetup(b, 750, true)
	ea, eb := c.Encode(ka), c.Encode(kb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Intersect(ea, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	c, keys, _ := benchSetup(b, 1500, true)
	e := c.Encode(keys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Contains(e, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
