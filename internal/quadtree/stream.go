package quadtree

import (
	"fmt"
	"sync"

	"sensjoin/internal/bitstream"
	"sensjoin/internal/zorder"
)

// Streaming set operations "directly on the representation" (paper
// §V-D): the wire format is parsed into its structural form — index
// nodes and *relative* point lists, never expanded to absolute keys —
// and the two trees are merged in a single parallel depth-first
// traversal, exactly the Mergesort-like pass the paper describes. The
// result is re-emitted with the same cost-optimal decomposition the
// canonical encoder uses, so StreamUnion/StreamIntersect produce
// bit-identical output to the decode-merge-encode path (property-tested)
// while avoiding the absolute-key materialization.
//
// All transient structures (tree nodes, child pointer slots, suffix
// runs, the output bit writer) live in a pooled streamScratch arena so
// that steady-state stream operations allocate only the returned
// Encoded.Data copy. Nodes are handed out from a grow-only slab;
// pointers into a slab stay valid across slab growth because the old
// backing array is retained until the operation completes.

// treeNode is the parsed structural form of one subtree.
type treeNode struct {
	// leaf is true for a point list; suffixes hold the points relative
	// to this position (sorted).
	leaf     bool
	suffixes []zorder.Key
	// children are the present quadrants (nil entries absent),
	// fanout-sized, for index nodes.
	children []*treeNode
}

// count returns the number of points under n.
func (n *treeNode) count() int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return len(n.suffixes)
	}
	c := 0
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// streamScratch holds the reusable buffers of one stream operation.
// It is obtained from streamPool and must not be shared between
// goroutines while in use.
type streamScratch struct {
	nodes []treeNode   // node arena
	kids  []*treeNode  // children slot slab
	keys  []zorder.Key // suffix run slab
	w     bitstream.Writer
}

var streamPool = sync.Pool{New: func() any { return new(streamScratch) }}

func (s *streamScratch) reset() {
	// Drop pointers held in recycled slots so the pool does not pin
	// subtrees from earlier operations.
	clear(s.kids)
	for i := range s.nodes {
		s.nodes[i] = treeNode{}
	}
	s.nodes = s.nodes[:0]
	s.kids = s.kids[:0]
	s.keys = s.keys[:0]
	s.w.Reset()
}

// node hands out a zeroed node from the arena.
func (s *streamScratch) node() *treeNode {
	s.nodes = append(s.nodes, treeNode{})
	return &s.nodes[len(s.nodes)-1]
}

// childSlots hands out a zeroed, full-capacity run of fanout child
// pointers from the slab.
func (s *streamScratch) childSlots(fanout int) []*treeNode {
	off := len(s.kids)
	if off+fanout <= cap(s.kids) {
		s.kids = s.kids[:off+fanout]
		clear(s.kids[off : off+fanout])
	} else {
		s.kids = append(s.kids, make([]*treeNode, fanout)...)
	}
	return s.kids[off : off+fanout : off+fanout]
}

// keyRun returns the slab slice [off:len] capped so callers cannot
// append past it into later runs.
func (s *streamScratch) keyRun(off int) []zorder.Key {
	return s.keys[off:len(s.keys):len(s.keys)]
}

// parse reads one subtree at level l. Leaf suffix runs are contiguous
// appends to the key slab: parse never interleaves two unfinished runs.
func (c *Codec) parse(s *streamScratch, r *bitstream.Reader, l int) (*treeNode, error) {
	first := r.ReadBit()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if first == 1 {
		n := s.node()
		n.leaf = true
		off := len(s.keys)
		rbits := c.suffix[l]
		for {
			suf := r.ReadBits(rbits)
			if r.Err() != nil {
				return nil, r.Err()
			}
			s.keys = append(s.keys, suf)
			if r.ReadBit() == 0 {
				break
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
		}
		n.suffixes = s.keyRun(off)
		return n, nil
	}
	if l >= len(c.levels) {
		return nil, fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if mask == 0 {
		return nil, fmt.Errorf("quadtree: index node with empty presence mask")
	}
	n := s.node()
	n.children = s.childSlots(fanout)
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		ch, err := c.parse(s, r, l+1)
		if err != nil {
			return nil, err
		}
		n.children[q] = ch
	}
	return n, nil
}

// parseEncoded parses a whole encoding; nil for the empty set.
func (c *Codec) parseEncoded(s *streamScratch, e Encoded) (*treeNode, error) {
	if e.Empty() {
		return nil, nil
	}
	var r bitstream.Reader
	r.Reset(e.Data, e.Bits)
	n, err := c.parse(s, &r, 0)
	if err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return n, nil
}

// splitLeaf partitions a leaf's relative suffixes into the quadrants of
// level l (suffixes are sorted, so quadrants are contiguous runs).
func (c *Codec) splitLeaf(s *streamScratch, n *treeNode, l int) *treeNode {
	fanout := 1 << uint(c.levels[l])
	shift := uint(c.suffix[l+1])
	maskQ := zorder.Key(fanout - 1)
	out := s.node()
	out.children = s.childSlots(fanout)
	suffMask := ^zorder.Key(0)
	if c.suffix[l+1] < 64 {
		suffMask = (zorder.Key(1) << shift) - 1
	}
	start := 0
	for start < len(n.suffixes) {
		q := (n.suffixes[start] >> shift) & maskQ
		end := start
		child := s.node()
		child.leaf = true
		off := len(s.keys)
		for end < len(n.suffixes) && (n.suffixes[end]>>shift)&maskQ == q {
			s.keys = append(s.keys, n.suffixes[end]&suffMask)
			end++
		}
		child.suffixes = s.keyRun(off)
		out.children[q] = child
		start = end
	}
	return out
}

type setOp int

const (
	opUnion setOp = iota
	opIntersect
)

// mergeKeysInto runs UnionKeys/IntersectKeys semantics appending to the
// key slab; a and b may themselves live in the slab (slab growth keeps
// old backing arrays valid).
func mergeKeysInto(s *streamScratch, a, b []zorder.Key, op setOp) []zorder.Key {
	off := len(s.keys)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			if op == opUnion {
				s.keys = append(s.keys, a[i])
			}
			i++
		case a[i] > b[j]:
			if op == opUnion {
				s.keys = append(s.keys, b[j])
			}
			j++
		default:
			s.keys = append(s.keys, a[i])
			i++
			j++
		}
	}
	if op == opUnion {
		s.keys = append(s.keys, a[i:]...)
		s.keys = append(s.keys, b[j:]...)
	}
	return s.keyRun(off)
}

// merge combines two parsed subtrees at level l. Either input may be
// nil (empty). The result may be nil (empty) for intersections.
func (c *Codec) merge(s *streamScratch, a, b *treeNode, l int, op setOp) *treeNode {
	if a == nil || b == nil {
		if op == opUnion {
			if a == nil {
				return b
			}
			return a
		}
		return nil
	}
	if a.leaf && b.leaf {
		n := s.node()
		n.leaf = true
		n.suffixes = mergeKeysInto(s, a.suffixes, b.suffixes, op)
		if op == opIntersect && len(n.suffixes) == 0 {
			return nil
		}
		return n
	}
	// Align shapes: push a leaf one level down when the other side is
	// an index node.
	if a.leaf {
		a = c.splitLeaf(s, a, l)
	}
	if b.leaf {
		b = c.splitLeaf(s, b, l)
	}
	fanout := len(a.children)
	out := s.node()
	out.children = s.childSlots(fanout)
	any := false
	for q := 0; q < fanout; q++ {
		ch := c.merge(s, a.children[q], b.children[q], l+1, op)
		if ch != nil && ch.count() > 0 {
			out.children[q] = ch
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// nodeCost computes the optimal encoded size in bits of subtree n at
// level l, matching the canonical encoder's cost function.
func (c *Codec) nodeCost(s *streamScratch, n *treeNode, l int) int {
	count := n.count()
	costList := count*(1+c.suffix[l]) + 1
	if l == len(c.levels) || count == 1 {
		return costList
	}
	var work *treeNode = n
	if n.leaf {
		work = c.splitLeaf(s, n, l)
	}
	costSplit := 1 + (1 << uint(c.levels[l]))
	for _, ch := range work.children {
		if ch != nil {
			costSplit += c.nodeCost(s, ch, l+1)
		}
	}
	if costList <= costSplit {
		return costList
	}
	return costSplit
}

// emitNode writes subtree n at level l with optimal decisions; the
// output is canonical (identical to Encode of the same set).
func (c *Codec) emitNode(s *streamScratch, w *bitstream.Writer, n *treeNode, l int) {
	count := n.count()
	costList := count*(1+c.suffix[l]) + 1
	mustList := l == len(c.levels) || count == 1
	if !mustList {
		work := n
		if n.leaf {
			work = c.splitLeaf(s, n, l)
		}
		costSplit := 1 + (1 << uint(c.levels[l]))
		for _, ch := range work.children {
			if ch != nil {
				costSplit += c.nodeCost(s, ch, l+1)
			}
		}
		if costSplit < costList {
			w.WriteBit(0)
			fanout := len(work.children)
			for q := 0; q < fanout; q++ {
				w.WriteBool(work.children[q] != nil)
			}
			for q := 0; q < fanout; q++ {
				if work.children[q] != nil {
					c.emitNode(s, w, work.children[q], l+1)
				}
			}
			return
		}
	}
	// List: flatten the subtree's points relative to this level.
	var suffixes []zorder.Key
	if n.leaf {
		suffixes = n.suffixes
	} else {
		off := len(s.keys)
		c.collectRel(s, n, l, 0, 0)
		suffixes = s.keyRun(off)
	}
	for _, suf := range suffixes {
		w.WriteBit(1)
		w.WriteBits(suf, c.suffix[l])
	}
	w.WriteBit(0)
}

// collectRel flattens points below n into the key slab as suffixes
// relative to topLevel (depth-first, so already sorted).
func (c *Codec) collectRel(s *streamScratch, n *treeNode, topLevel, curOffset int, prefix zorder.Key) {
	l := topLevel + curOffset
	if n.leaf {
		shift := uint(c.suffix[l])
		for _, suf := range n.suffixes {
			s.keys = append(s.keys, prefix<<shift|suf)
		}
		return
	}
	for q, ch := range n.children {
		if ch != nil {
			c.collectRel(s, ch, topLevel, curOffset+1, prefix<<uint(c.levels[l])|zorder.Key(q))
		}
	}
}

// StreamContains tests membership by walking the encoding directly:
// index-node masks prune absent quadrants immediately, subtrees on the
// key's path are descended, and everything else is structurally skipped
// without materializing points. This is how a sensor node checks its own
// join-attribute tuple against a received filter. It allocates nothing:
// the bit reader lives on the caller's stack.
func (c *Codec) StreamContains(e Encoded, k zorder.Key) (bool, error) {
	if e.Empty() {
		return false, nil
	}
	var r bitstream.Reader
	r.Reset(e.Data, e.Bits)
	found, err := c.walkContains(&r, 0, k)
	if err != nil {
		return false, err
	}
	return found, r.Err()
}

func (c *Codec) walkContains(r *bitstream.Reader, l int, k zorder.Key) (bool, error) {
	first := r.ReadBit()
	if r.Err() != nil {
		return false, r.Err()
	}
	if first == 1 {
		// Point list: suffixes are sorted, so stop at the first suffix
		// past the target.
		rbits := c.suffix[l]
		var want zorder.Key
		if rbits < 64 {
			want = k & ((zorder.Key(1) << uint(rbits)) - 1)
		} else {
			want = k
		}
		found := false
		for {
			s := r.ReadBits(rbits)
			if r.Err() != nil {
				return false, r.Err()
			}
			if s == want {
				found = true
			}
			if r.ReadBit() == 0 {
				return found, r.Err()
			}
			if r.Err() != nil {
				return false, r.Err()
			}
		}
	}
	if l >= len(c.levels) {
		return false, fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return false, r.Err()
	}
	if mask == 0 {
		return false, fmt.Errorf("quadtree: index node with empty presence mask")
	}
	shift := uint(c.suffix[l+1])
	want := int((k >> shift) & zorder.Key(fanout-1))
	result := false
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		switch {
		case q < want:
			if err := c.skipSubtree(r, l+1); err != nil {
				return false, err
			}
		case q == want:
			f, err := c.walkContains(r, l+1, k)
			if err != nil {
				return false, err
			}
			result = f
			// Remaining siblings are irrelevant: the answer is known.
			return result, nil
		default:
			// Past the target quadrant without finding it.
			return false, nil
		}
	}
	return result, nil
}

// skipSubtree consumes one subtree's bits without building anything.
func (c *Codec) skipSubtree(r *bitstream.Reader, l int) error {
	first := r.ReadBit()
	if r.Err() != nil {
		return r.Err()
	}
	if first == 1 {
		rbits := c.suffix[l]
		for {
			r.ReadBits(rbits)
			if r.Err() != nil {
				return r.Err()
			}
			if r.ReadBit() == 0 {
				return r.Err()
			}
			if r.Err() != nil {
				return r.Err()
			}
		}
	}
	if l >= len(c.levels) {
		return fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return r.Err()
	}
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) != 0 {
			if err := c.skipSubtree(r, l+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// StreamUnion computes the union in one parallel traversal of the two
// encodings, without materializing absolute keys.
func (c *Codec) StreamUnion(a, b Encoded) (Encoded, error) {
	return c.streamOp(a, b, opUnion)
}

// StreamIntersect computes the intersection in one parallel traversal.
func (c *Codec) StreamIntersect(a, b Encoded) (Encoded, error) {
	return c.streamOp(a, b, opIntersect)
}

func (c *Codec) streamOp(a, b Encoded, op setOp) (Encoded, error) {
	s := streamPool.Get().(*streamScratch)
	defer streamPool.Put(s)
	s.reset()
	ta, err := c.parseEncoded(s, a)
	if err != nil {
		return Encoded{}, err
	}
	tb, err := c.parseEncoded(s, b)
	if err != nil {
		return Encoded{}, err
	}
	m := c.merge(s, ta, tb, 0, op)
	if m == nil || m.count() == 0 {
		return Encoded{}, nil
	}
	c.emitNode(s, &s.w, m, 0)
	// The writer's buffer returns to the pool with the scratch, so the
	// result must be an owned copy.
	data := append([]byte(nil), s.w.Bytes()...)
	return Encoded{Data: data, Bits: s.w.Len()}, nil
}
