package quadtree

import (
	"fmt"

	"sensjoin/internal/bitstream"
	"sensjoin/internal/zorder"
)

// Streaming set operations "directly on the representation" (paper
// §V-D): the wire format is parsed into its structural form — index
// nodes and *relative* point lists, never expanded to absolute keys —
// and the two trees are merged in a single parallel depth-first
// traversal, exactly the Mergesort-like pass the paper describes. The
// result is re-emitted with the same cost-optimal decomposition the
// canonical encoder uses, so StreamUnion/StreamIntersect produce
// bit-identical output to the decode-merge-encode path (property-tested)
// while avoiding the absolute-key materialization.

// treeNode is the parsed structural form of one subtree.
type treeNode struct {
	// leaf is true for a point list; suffixes hold the points relative
	// to this position (sorted).
	leaf     bool
	suffixes []zorder.Key
	// children are the present quadrants (nil entries absent),
	// fanout-sized, for index nodes.
	children []*treeNode
}

// count returns the number of points under n.
func (n *treeNode) count() int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return len(n.suffixes)
	}
	c := 0
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// parse reads one subtree at level l.
func (c *Codec) parse(r *bitstream.Reader, l int) (*treeNode, error) {
	first := r.ReadBit()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if first == 1 {
		n := &treeNode{leaf: true}
		rbits := c.suffix[l]
		for {
			s := r.ReadBits(rbits)
			if r.Err() != nil {
				return nil, r.Err()
			}
			n.suffixes = append(n.suffixes, s)
			if r.ReadBit() == 0 {
				break
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
		}
		return n, nil
	}
	if l >= len(c.levels) {
		return nil, fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if mask == 0 {
		return nil, fmt.Errorf("quadtree: index node with empty presence mask")
	}
	n := &treeNode{children: make([]*treeNode, fanout)}
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		ch, err := c.parse(r, l+1)
		if err != nil {
			return nil, err
		}
		n.children[q] = ch
	}
	return n, nil
}

// parseEncoded parses a whole encoding; nil for the empty set.
func (c *Codec) parseEncoded(e Encoded) (*treeNode, error) {
	if e.Empty() {
		return nil, nil
	}
	r := bitstream.NewReader(e.Data, e.Bits)
	n, err := c.parse(r, 0)
	if err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return n, nil
}

// splitLeaf partitions a leaf's relative suffixes into the quadrants of
// level l (suffixes are sorted, so quadrants are contiguous runs).
func (c *Codec) splitLeaf(n *treeNode, l int) *treeNode {
	fanout := 1 << uint(c.levels[l])
	shift := uint(c.suffix[l+1])
	maskQ := zorder.Key(fanout - 1)
	out := &treeNode{children: make([]*treeNode, fanout)}
	suffMask := ^zorder.Key(0)
	if c.suffix[l+1] < 64 {
		suffMask = (zorder.Key(1) << shift) - 1
	}
	start := 0
	for start < len(n.suffixes) {
		q := (n.suffixes[start] >> shift) & maskQ
		end := start
		var child treeNode
		child.leaf = true
		for end < len(n.suffixes) && (n.suffixes[end]>>shift)&maskQ == q {
			child.suffixes = append(child.suffixes, n.suffixes[end]&suffMask)
			end++
		}
		out.children[q] = &child
		start = end
	}
	return out
}

type setOp int

const (
	opUnion setOp = iota
	opIntersect
)

// merge combines two parsed subtrees at level l. Either input may be
// nil (empty). The result may be nil (empty) for intersections.
func (c *Codec) merge(a, b *treeNode, l int, op setOp) *treeNode {
	if a == nil || b == nil {
		if op == opUnion {
			if a == nil {
				return b
			}
			return a
		}
		return nil
	}
	if a.leaf && b.leaf {
		n := &treeNode{leaf: true}
		if op == opUnion {
			n.suffixes = UnionKeys(a.suffixes, b.suffixes)
		} else {
			n.suffixes = IntersectKeys(a.suffixes, b.suffixes)
			if len(n.suffixes) == 0 {
				return nil
			}
		}
		return n
	}
	// Align shapes: push a leaf one level down when the other side is
	// an index node.
	if a.leaf {
		a = c.splitLeaf(a, l)
	}
	if b.leaf {
		b = c.splitLeaf(b, l)
	}
	fanout := len(a.children)
	out := &treeNode{children: make([]*treeNode, fanout)}
	any := false
	for q := 0; q < fanout; q++ {
		ch := c.merge(a.children[q], b.children[q], l+1, op)
		if ch != nil && ch.count() > 0 {
			out.children[q] = ch
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// nodeCost computes the optimal encoded size in bits of subtree n at
// level l, matching the canonical encoder's cost function.
func (c *Codec) nodeCost(n *treeNode, l int) int {
	count := n.count()
	costList := count*(1+c.suffix[l]) + 1
	if l == len(c.levels) || count == 1 {
		return costList
	}
	var work *treeNode = n
	if n.leaf {
		work = c.splitLeaf(n, l)
	}
	costSplit := 1 + (1 << uint(c.levels[l]))
	for _, ch := range work.children {
		if ch != nil {
			costSplit += c.nodeCost(ch, l+1)
		}
	}
	if costList <= costSplit {
		return costList
	}
	return costSplit
}

// emitNode writes subtree n at level l with optimal decisions; the
// output is canonical (identical to Encode of the same set).
func (c *Codec) emitNode(w *bitstream.Writer, n *treeNode, l int) {
	count := n.count()
	costList := count*(1+c.suffix[l]) + 1
	mustList := l == len(c.levels) || count == 1
	if !mustList {
		work := n
		if n.leaf {
			work = c.splitLeaf(n, l)
		}
		costSplit := 1 + (1 << uint(c.levels[l]))
		for _, ch := range work.children {
			if ch != nil {
				costSplit += c.nodeCost(ch, l+1)
			}
		}
		if costSplit < costList {
			w.WriteBit(0)
			fanout := len(work.children)
			for q := 0; q < fanout; q++ {
				w.WriteBool(work.children[q] != nil)
			}
			for q := 0; q < fanout; q++ {
				if work.children[q] != nil {
					c.emitNode(w, work.children[q], l+1)
				}
			}
			return
		}
	}
	// List: flatten the subtree's points relative to this level.
	var suffixes []zorder.Key
	if n.leaf {
		suffixes = n.suffixes
	} else {
		c.collectRel(n, l, 0, 0, &suffixes)
	}
	for _, s := range suffixes {
		w.WriteBit(1)
		w.WriteBits(s, c.suffix[l])
	}
	w.WriteBit(0)
}

// collectRel flattens points below n into suffixes relative to
// topLevel (depth-first, so already sorted).
func (c *Codec) collectRel(n *treeNode, topLevel, curOffset int, prefix zorder.Key, out *[]zorder.Key) {
	l := topLevel + curOffset
	if n.leaf {
		shift := uint(c.suffix[l])
		for _, s := range n.suffixes {
			*out = append(*out, prefix<<shift|s)
		}
		return
	}
	for q, ch := range n.children {
		if ch != nil {
			c.collectRel(ch, topLevel, curOffset+1, prefix<<uint(c.levels[l])|zorder.Key(q), out)
		}
	}
}

// StreamContains tests membership by walking the encoding directly:
// index-node masks prune absent quadrants immediately, subtrees on the
// key's path are descended, and everything else is structurally skipped
// without materializing points. This is how a sensor node checks its own
// join-attribute tuple against a received filter.
func (c *Codec) StreamContains(e Encoded, k zorder.Key) (bool, error) {
	if e.Empty() {
		return false, nil
	}
	r := bitstream.NewReader(e.Data, e.Bits)
	found, err := c.walkContains(r, 0, k)
	if err != nil {
		return false, err
	}
	return found, r.Err()
}

func (c *Codec) walkContains(r *bitstream.Reader, l int, k zorder.Key) (bool, error) {
	first := r.ReadBit()
	if r.Err() != nil {
		return false, r.Err()
	}
	if first == 1 {
		// Point list: suffixes are sorted, so stop at the first suffix
		// past the target.
		rbits := c.suffix[l]
		var want zorder.Key
		if rbits < 64 {
			want = k & ((zorder.Key(1) << uint(rbits)) - 1)
		} else {
			want = k
		}
		found := false
		for {
			s := r.ReadBits(rbits)
			if r.Err() != nil {
				return false, r.Err()
			}
			if s == want {
				found = true
			}
			if r.ReadBit() == 0 {
				return found, r.Err()
			}
			if r.Err() != nil {
				return false, r.Err()
			}
		}
	}
	if l >= len(c.levels) {
		return false, fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return false, r.Err()
	}
	if mask == 0 {
		return false, fmt.Errorf("quadtree: index node with empty presence mask")
	}
	shift := uint(c.suffix[l+1])
	want := int((k >> shift) & zorder.Key(fanout-1))
	result := false
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		switch {
		case q < want:
			if err := c.skipSubtree(r, l+1); err != nil {
				return false, err
			}
		case q == want:
			f, err := c.walkContains(r, l+1, k)
			if err != nil {
				return false, err
			}
			result = f
			// Remaining siblings are irrelevant: the answer is known.
			return result, nil
		default:
			// Past the target quadrant without finding it.
			return false, nil
		}
	}
	return result, nil
}

// skipSubtree consumes one subtree's bits without building anything.
func (c *Codec) skipSubtree(r *bitstream.Reader, l int) error {
	first := r.ReadBit()
	if r.Err() != nil {
		return r.Err()
	}
	if first == 1 {
		rbits := c.suffix[l]
		for {
			r.ReadBits(rbits)
			if r.Err() != nil {
				return r.Err()
			}
			if r.ReadBit() == 0 {
				return r.Err()
			}
			if r.Err() != nil {
				return r.Err()
			}
		}
	}
	if l >= len(c.levels) {
		return fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return r.Err()
	}
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) != 0 {
			if err := c.skipSubtree(r, l+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// StreamUnion computes the union in one parallel traversal of the two
// encodings, without materializing absolute keys.
func (c *Codec) StreamUnion(a, b Encoded) (Encoded, error) {
	return c.streamOp(a, b, opUnion)
}

// StreamIntersect computes the intersection in one parallel traversal.
func (c *Codec) StreamIntersect(a, b Encoded) (Encoded, error) {
	return c.streamOp(a, b, opIntersect)
}

func (c *Codec) streamOp(a, b Encoded, op setOp) (Encoded, error) {
	ta, err := c.parseEncoded(a)
	if err != nil {
		return Encoded{}, err
	}
	tb, err := c.parseEncoded(b)
	if err != nil {
		return Encoded{}, err
	}
	m := c.merge(ta, tb, 0, op)
	if m == nil || m.count() == 0 {
		return Encoded{}, nil
	}
	w := bitstream.NewWriter(m.count() * (c.total + 2))
	c.emitNode(w, m, 0)
	return Encoded{Data: w.Bytes(), Bits: w.Len()}, nil
}
