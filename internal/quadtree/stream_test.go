package quadtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sensjoin/internal/zorder"
)

// The streaming operations must produce bit-identical output to the
// decode-merge-encode reference path, for clustered and uniform data of
// all sizes — the canonical-form guarantee that makes the two
// implementations interchangeable on the wire.
func TestQuickStreamOpsMatchReference(t *testing.T) {
	c, g := testCodec(t)
	f := func(seed int64, na, nb uint8, clustered bool) bool {
		rng := rand.New(rand.NewSource(seed))
		a := c.Encode(randomKeys(g, rng, int(na%80)+1, clustered))
		b := c.Encode(randomKeys(g, rng, int(nb%80)+1, clustered))

		wantU, err := c.Union(a, b)
		if err != nil {
			return false
		}
		gotU, err := c.StreamUnion(a, b)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(wantU, gotU) {
			return false
		}
		wantI, err := c.Intersect(a, b)
		if err != nil {
			return false
		}
		gotI, err := c.StreamIntersect(a, b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(wantI, gotI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOpsEmptyInputs(t *testing.T) {
	c, g := testCodec(t)
	keys := randomKeys(g, rand.New(rand.NewSource(3)), 30, true)
	e := c.Encode(keys)

	u, err := c.StreamUnion(e, Encoded{})
	if err != nil || !reflect.DeepEqual(u, e) {
		t.Fatalf("union with empty: %v %v", u, err)
	}
	u, err = c.StreamUnion(Encoded{}, e)
	if err != nil || !reflect.DeepEqual(u, e) {
		t.Fatal("union with empty (left) failed")
	}
	i, err := c.StreamIntersect(e, Encoded{})
	if err != nil || !i.Empty() {
		t.Fatal("intersect with empty should be empty")
	}
	i, err = c.StreamIntersect(Encoded{}, Encoded{})
	if err != nil || !i.Empty() {
		t.Fatal("intersect of empties should be empty")
	}
}

func TestStreamDisjointSets(t *testing.T) {
	c, g := testCodec(t)
	// Two sets in different relation-flag subtrees never intersect.
	var a, b []zorder.Key
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		va := []float64{rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050}
		a = append(a, g.Encode(0b10, va))
		b = append(b, g.Encode(0b01, va))
	}
	ea, eb := c.Encode(a), c.Encode(b)
	i, err := c.StreamIntersect(ea, eb)
	if err != nil || !i.Empty() {
		t.Fatal("flag-disjoint sets must not intersect")
	}
	u, err := c.StreamUnion(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Count(u)
	if err != nil || n != len(NormalizeKeys(a))+len(NormalizeKeys(b)) {
		t.Fatalf("union count = %d", n)
	}
}

func TestStreamRejectsCorruptInput(t *testing.T) {
	c, _ := testCodec(t)
	bad := Encoded{Data: []byte{0x00}, Bits: 5} // index node, empty mask
	if _, err := c.StreamUnion(bad, Encoded{}); err == nil {
		t.Fatal("corrupt input must fail")
	}
	if _, err := c.StreamIntersect(Encoded{}, bad); err == nil {
		t.Fatal("corrupt input must fail")
	}
}

func BenchmarkStreamUnion(b *testing.B) {
	c, ka, kb := benchSetup(b, 750, true)
	ea, eb := c.Encode(ka), c.Encode(kb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.StreamUnion(ea, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamIntersect(b *testing.B) {
	c, ka, kb := benchSetup(b, 750, true)
	ea, eb := c.Encode(ka), c.Encode(kb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.StreamIntersect(ea, eb); err != nil {
			b.Fatal(err)
		}
	}
}

// StreamContains must agree with the decode-based membership test on
// present and absent keys alike.
func TestQuickStreamContains(t *testing.T) {
	c, g := testCodec(t)
	f := func(seed int64, n uint8, clustered bool) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := NormalizeKeys(randomKeys(g, rng, int(n%100)+1, clustered))
		e := c.Encode(keys)
		// All present keys.
		for _, k := range keys {
			got, err := c.StreamContains(e, k)
			if err != nil || !got {
				return false
			}
		}
		// Random probes (mostly absent).
		for i := 0; i < 20; i++ {
			probe := g.Encode(uint64(1+rng.Intn(3)), []float64{
				rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050,
			})
			want := ContainsKey(keys, probe)
			got, err := c.StreamContains(e, probe)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamContainsEmpty(t *testing.T) {
	c, g := testCodec(t)
	k := g.Encode(0b11, []float64{20, 10, 10})
	got, err := c.StreamContains(Encoded{}, k)
	if err != nil || got {
		t.Fatal("empty set contains nothing")
	}
}

func BenchmarkStreamContains(b *testing.B) {
	c, keys, _ := benchSetup(b, 1500, true)
	e := c.Encode(keys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.StreamContains(e, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
