package quadtree

import (
	"math/rand"
	"testing"
)

// The stream operations and Encode run on every simulated packet hop,
// so their allocation counts are regression-tested: the pooled scratch
// arenas keep the steady state at a handful of allocations (the owned
// result copy), where the naive tree build allocated per node. Bounds
// carry generous headroom over measured values so only a structural
// regression (per-node or per-key allocation) trips them.
func TestStreamOpAllocs(t *testing.T) {
	c, g := testCodec(t)
	rng := rand.New(rand.NewSource(11))
	ea := c.Encode(randomKeys(g, rng, 400, true))
	eb := c.Encode(randomKeys(g, rng, 400, true))
	keys := randomKeys(g, rng, 50, true)

	if _, err := c.StreamUnion(ea, eb); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.StreamUnion(ea, eb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 50 {
		t.Errorf("StreamUnion: %.0f allocs/run, want <= 50", allocs)
	}

	allocs = testing.AllocsPerRun(10, func() {
		if _, err := c.StreamIntersect(ea, eb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 50 {
		t.Errorf("StreamIntersect: %.0f allocs/run, want <= 50", allocs)
	}

	allocs = testing.AllocsPerRun(10, func() {
		for _, k := range keys {
			if _, err := c.StreamContains(ea, k); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 1 {
		t.Errorf("StreamContains: %.0f allocs per %d probes, want none", allocs, len(keys))
	}

	allocs = testing.AllocsPerRun(10, func() {
		c.Encode(keys)
	})
	if allocs > 20 {
		t.Errorf("Encode: %.0f allocs/run, want <= 20", allocs)
	}
}
