package quadtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sensjoin/internal/zorder"
)

// testCodec returns a codec over the paper's experiment grid
// (2 flag bits; temp 9 bits, x/y 11 bits each) plus the grid itself.
func testCodec(t *testing.T) (*Codec, *zorder.Grid) {
	t.Helper()
	temp, err := zorder.NewDim("temp", 0, 40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := zorder.NewDim("x", 0, 1050, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := zorder.NewDim("y", 0, 1050, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := zorder.NewGrid(2, []zorder.Dim{temp, x, y})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(g.Levels())
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(nil); err == nil {
		t.Fatal("empty schedule must fail")
	}
	if _, err := NewCodec([]int{0}); err == nil {
		t.Fatal("zero-width level must fail")
	}
	if _, err := NewCodec([]int{17}); err == nil {
		t.Fatal("over-wide level must fail")
	}
	if _, err := NewCodec([]int{16, 16, 16, 16, 16}); err == nil {
		t.Fatal(">64 total bits must fail")
	}
	c, err := NewCodec([]int{2, 3, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBits() != 10 {
		t.Fatalf("TotalBits = %d, want 10", c.TotalBits())
	}
}

func TestEmptySet(t *testing.T) {
	c, _ := testCodec(t)
	e := c.Encode(nil)
	if !e.Empty() || e.ByteLen() != 0 {
		t.Fatalf("empty set encoding = %+v", e)
	}
	keys, err := c.Decode(e)
	if err != nil || len(keys) != 0 {
		t.Fatalf("decode empty: %v %v", keys, err)
	}
	n, err := c.Count(e)
	if err != nil || n != 0 {
		t.Fatal("count of empty should be 0")
	}
}

func TestSinglePointRoundtrip(t *testing.T) {
	c, g := testCodec(t)
	k := g.Encode(0b10, []float64{23.2, 100, 200})
	e := c.Encode([]zorder.Key{k})
	// A single point lists as '1' + 33 suffix bits + '0' = 35 bits.
	if e.Bits != 35 {
		t.Fatalf("single point encoding = %d bits, want 35", e.Bits)
	}
	keys, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != k {
		t.Fatalf("roundtrip = %v, want [%d]", keys, k)
	}
}

func TestDuplicatesRemoved(t *testing.T) {
	c, g := testCodec(t)
	k := g.Encode(0b11, []float64{20, 50, 50})
	e := c.Encode([]zorder.Key{k, k, k})
	n, err := c.Count(e)
	if err != nil || n != 1 {
		t.Fatalf("count = %d, want 1 (set semantics)", n)
	}
}

func randomKeys(g *zorder.Grid, rng *rand.Rand, n int, clustered bool) []zorder.Key {
	keys := make([]zorder.Key, n)
	var baseT, baseX, baseY float64
	for i := range keys {
		if clustered {
			if i%24 == 0 {
				baseT = rng.Float64() * 40
				baseX = rng.Float64() * 1000
				baseY = rng.Float64() * 1000
			}
			keys[i] = g.Encode(0b11, []float64{
				baseT + rng.Float64()*0.5,
				baseX + rng.Float64()*40,
				baseY + rng.Float64()*40,
			})
		} else {
			keys[i] = g.Encode(uint64(1+rng.Intn(3)), []float64{
				rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050,
			})
		}
	}
	return keys
}

func TestQuickEncodeDecodeRoundtrip(t *testing.T) {
	c, g := testCodec(t)
	f := func(seed int64, n uint8, clustered bool) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := randomKeys(g, rng, int(n)+1, clustered)
		want := NormalizeKeys(keys)
		e := c.Encode(keys)
		got, err := c.Decode(e)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalEncoding(t *testing.T) {
	c, g := testCodec(t)
	rng := rand.New(rand.NewSource(11))
	keys := randomKeys(g, rng, 300, true)
	e1 := c.Encode(keys)
	// Shuffle and re-encode: identical bitstring.
	shuffled := append([]zorder.Key(nil), keys...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	e2 := c.Encode(shuffled)
	if e1.Bits != e2.Bits || !reflect.DeepEqual(e1.Data, e2.Data) {
		t.Fatal("encoding must be canonical (order independent)")
	}
	// Decode + re-encode: identical bitstring.
	dec, err := c.Decode(e1)
	if err != nil {
		t.Fatal(err)
	}
	e3 := c.Encode(dec)
	if !reflect.DeepEqual(e1, e3) {
		t.Fatal("decode/encode must be idempotent")
	}
}

func TestQuickUnionIntersect(t *testing.T) {
	c, g := testCodec(t)
	f := func(seed int64, na, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomKeys(g, rng, int(na%60)+1, true)
		b := randomKeys(g, rng, int(nb%60)+1, true)
		ea, eb := c.Encode(a), c.Encode(b)
		// Reference via maps.
		setA := map[zorder.Key]bool{}
		for _, k := range a {
			setA[k] = true
		}
		set := map[zorder.Key]bool{}
		for k := range setA {
			set[k] = true
		}
		both := map[zorder.Key]bool{}
		for _, k := range b {
			if setA[k] {
				both[k] = true
			}
			set[k] = true
		}
		u, err := c.Union(ea, eb)
		if err != nil {
			return false
		}
		uk, err := c.Decode(u)
		if err != nil || len(uk) != len(set) {
			return false
		}
		for _, k := range uk {
			if !set[k] {
				return false
			}
		}
		iv, err := c.Intersect(ea, eb)
		if err != nil {
			return false
		}
		ik, err := c.Decode(iv)
		if err != nil || len(ik) != len(both) {
			return false
		}
		for _, k := range ik {
			if !both[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionWithEmpty(t *testing.T) {
	c, g := testCodec(t)
	keys := randomKeys(g, rand.New(rand.NewSource(3)), 20, false)
	e := c.Encode(keys)
	u, err := c.Union(e, Encoded{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u, e) {
		t.Fatal("union with empty must be identity")
	}
	iv, err := c.Intersect(e, Encoded{})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Empty() {
		t.Fatal("intersection with empty must be empty")
	}
}

func TestContainsAndInsert(t *testing.T) {
	c, g := testCodec(t)
	rng := rand.New(rand.NewSource(5))
	keys := randomKeys(g, rng, 50, true)
	e := c.Encode(keys)
	for _, k := range keys {
		ok, err := c.Contains(e, k)
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v", k, ok, err)
		}
	}
	probe := g.Encode(0b11, []float64{39.9, 1049, 3})
	if ContainsKey(NormalizeKeys(keys), probe) {
		t.Skip("probe collided with random keys")
	}
	ok, err := c.Contains(e, probe)
	if err != nil || ok {
		t.Fatal("Contains must reject absent key")
	}
	e2, err := c.Insert(e, probe)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = c.Contains(e2, probe)
	if err != nil || !ok {
		t.Fatal("Insert must add the key")
	}
	n1, _ := c.Count(e)
	n2, _ := c.Count(e2)
	if n2 != n1+1 {
		t.Fatalf("Insert changed count %d -> %d", n1, n2)
	}
}

// The headline property (paper §VI-B): for spatially correlated keys the
// quadtree encoding is substantially smaller than listing raw keys, and
// for the paper's experiment roughly half the raw join-attribute bytes.
func TestCompressionBeatsRawOnClusteredData(t *testing.T) {
	c, g := testCodec(t)
	rng := rand.New(rand.NewSource(9))
	keys := NormalizeKeys(randomKeys(g, rng, 1500, true))
	e := c.Encode(keys)
	rawListBits := len(keys) * (c.TotalBits() + 2) // '1' + suffix each, '0' once
	if e.Bits >= rawListBits {
		t.Fatalf("tree (%d bits) not smaller than flat list (%d bits)", e.Bits, rawListBits)
	}
	// Against the raw 2-bytes-per-attribute wire format (3 attrs = 6 B):
	rawBytes := len(keys) * zorder.RawBytes(3)
	if e.ByteLen()*10 > rawBytes*8 {
		t.Fatalf("tree %d B vs raw %d B: expected clearly below 80%%", e.ByteLen(), rawBytes)
	}
}

func TestUncorrelatedStillBounded(t *testing.T) {
	// Even on uncorrelated keys the encoding must not exceed the flat
	// list by more than the single root index node.
	c, g := testCodec(t)
	rng := rand.New(rand.NewSource(13))
	keys := NormalizeKeys(randomKeys(g, rng, 500, false))
	e := c.Encode(keys)
	rawListBits := len(keys)*(c.TotalBits()+2) + 1
	if e.Bits > rawListBits {
		t.Fatalf("tree (%d bits) exceeds flat list (%d bits)", e.Bits, rawListBits)
	}
}

func TestDecodeErrors(t *testing.T) {
	c, _ := testCodec(t)
	// Truncated stream: an index node marker with nothing behind it.
	bad := Encoded{Data: []byte{0x00}, Bits: 3}
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("truncated stream must fail")
	}
	// An index node with an empty presence mask is invalid.
	bad2 := Encoded{Data: []byte{0x00}, Bits: 5} // '0' + mask 0000
	if _, err := c.Decode(bad2); err == nil {
		t.Fatal("empty mask must fail")
	}
}

func TestKeySetHelpers(t *testing.T) {
	a := []zorder.Key{1, 3, 5, 7}
	b := []zorder.Key{3, 4, 7, 9}
	if got := UnionKeys(a, b); !reflect.DeepEqual(got, []zorder.Key{1, 3, 4, 5, 7, 9}) {
		t.Fatalf("UnionKeys = %v", got)
	}
	if got := IntersectKeys(a, b); !reflect.DeepEqual(got, []zorder.Key{3, 7}) {
		t.Fatalf("IntersectKeys = %v", got)
	}
	if !ContainsKey(a, 5) || ContainsKey(a, 6) {
		t.Fatal("ContainsKey wrong")
	}
	if got := NormalizeKeys([]zorder.Key{5, 1, 5, 3, 1}); !reflect.DeepEqual(got, []zorder.Key{1, 3, 5}) {
		t.Fatalf("NormalizeKeys = %v", got)
	}
	if NormalizeKeys(nil) != nil {
		t.Fatal("NormalizeKeys(nil) should be nil")
	}
}
