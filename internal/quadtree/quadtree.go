// Package quadtree implements the paper's compact, pointerless
// region-quadtree representation of join-attribute tuple sets (§V-C,
// Figs. 8 and 9).
//
// A set of Z-order keys (package zorder) is stored as a bitstring in
// depth-first order. At every position there is either an index node —
// a '0' bit followed by a presence mask over the quadrants of the next
// level — or a list of points: each point is a '1' bit followed by the
// key's remaining bits relative to the current path, and the list is
// terminated by a '0' bit. The decomposition stops exactly when listing
// the points costs fewer bits than subdividing further (the paper's
// cost-based decomposition threshold), which makes the encoding canonical:
// equal sets encode to equal bitstrings.
//
// The topmost level consumes the relation-flag bits, so the root index
// node "represents the relation flags" as in the paper. Because levels
// may consume different bit counts (unequal dimension widths), the level
// schedule comes from zorder.Grid.Levels().
package quadtree

import (
	"fmt"
	"sort"
	"sync"

	"sensjoin/internal/bitstream"
	"sensjoin/internal/zorder"
)

// Encoded is a wire-format quadtree: Bits significant bits in Data.
// The zero value is the empty set.
type Encoded struct {
	Data []byte
	Bits int
}

// ByteLen returns the wire size in bytes.
func (e Encoded) ByteLen() int { return (e.Bits + 7) / 8 }

// Empty reports whether the set has no points.
func (e Encoded) Empty() bool { return e.Bits == 0 }

// Codec encodes and decodes key sets for one level schedule.
type Codec struct {
	levels []int
	total  int
	// suffix[l] is the number of key bits remaining below level l.
	suffix []int
}

// NewCodec builds a codec for the given per-level bit widths (the flag
// level first), as produced by zorder.Grid.Levels().
func NewCodec(levels []int) (*Codec, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("quadtree: empty level schedule")
	}
	c := &Codec{levels: append([]int(nil), levels...)}
	for i, l := range levels {
		if l < 1 || l > 16 {
			return nil, fmt.Errorf("quadtree: level %d has invalid width %d", i, l)
		}
		c.total += l
	}
	if c.total > 64 {
		return nil, fmt.Errorf("quadtree: %d total bits exceed 64", c.total)
	}
	c.suffix = make([]int, len(levels)+1)
	c.suffix[len(levels)] = 0
	for i := len(levels) - 1; i >= 0; i-- {
		c.suffix[i] = c.suffix[i+1] + levels[i]
	}
	return c, nil
}

// TotalBits returns the key width the codec expects.
func (c *Codec) TotalBits() int { return c.total }

// Encode produces the canonical wire form of the given keys. The input
// is not modified; duplicates are removed.
func (c *Codec) Encode(keys []zorder.Key) Encoded {
	set := NormalizeKeys(keys)
	if len(set) == 0 {
		return Encoded{}
	}
	// The decomposition of a sorted key set is fully determined by the
	// key bits: at level l the subtree starting at index i always covers
	// the same contiguous range, whatever the enclosing list/split
	// choices. Costs are therefore memoized per (level, start index),
	// computed once and reused by every emit decision on the path.
	s := encodePool.Get().(*encodeState)
	defer encodePool.Put(s)
	s.c = c
	s.keys = set
	depth := len(c.levels) + 1
	if need := depth * len(set); cap(s.memo) < need {
		s.memo = make([]int32, need)
	} else {
		s.memo = s.memo[:need]
	}
	for i := range s.memo {
		s.memo[i] = -1
	}
	s.w.Reset()
	s.emit(0, len(set), 0)
	e := Encoded{Data: append([]byte(nil), s.w.Bytes()...), Bits: s.w.Len()}
	s.keys = nil
	return e
}

// encodeState carries one Encode call's memo and writer; pooled so
// steady-state encoding does not allocate per call.
type encodeState struct {
	c    *Codec
	keys []zorder.Key
	memo []int32 // memo[l*len(keys)+start]: subtree cost, -1 unset
	w    bitstream.Writer
}

var encodePool = sync.Pool{New: func() any { return new(encodeState) }}

// run returns the end of the quadrant run starting at index start on
// level l, together with the quadrant number.
func (s *encodeState) run(start, end, l int) (int, zorder.Key) {
	shift := uint(s.c.suffix[l+1])
	mask := zorder.Key(1)<<uint(s.c.levels[l]) - 1
	q := (s.keys[start] >> shift) & mask
	en := start
	for en < end && (s.keys[en]>>shift)&mask == q {
		en++
	}
	return en, q
}

// cost returns the encoded size in bits of keys[start:end] at level l
// when choosing optimally between a point list and a subdivision.
func (s *encodeState) cost(start, end, l int) int {
	m := &s.memo[l*len(s.keys)+start]
	if *m >= 0 {
		return int(*m)
	}
	c := s.c
	costList := (end-start)*(1+c.suffix[l]) + 1
	v := costList
	if l != len(c.levels) && end-start > 1 {
		costSplit := 1 + (1 << uint(c.levels[l]))
		for st := start; st < end; {
			en, _ := s.run(st, end, l)
			costSplit += s.cost(st, en, l+1)
			st = en
		}
		if costSplit < costList {
			v = costSplit
		}
	}
	*m = int32(v)
	return v
}

func (s *encodeState) emit(start, end, l int) {
	c := s.c
	costList := (end-start)*(1+c.suffix[l]) + 1
	mustList := l == len(c.levels) || end-start == 1
	if !mustList {
		costSplit := 1 + (1 << uint(c.levels[l]))
		for st := start; st < end; {
			en, _ := s.run(st, end, l)
			costSplit += s.cost(st, en, l+1)
			st = en
		}
		if costSplit < costList {
			// Index node: '0' + presence mask, then children in
			// quadrant order. Runs come sorted by quadrant.
			s.w.WriteBit(0)
			fanout := 1 << uint(c.levels[l])
			ri := start
			for q := zorder.Key(0); q < zorder.Key(fanout); q++ {
				if ri < end {
					en, rq := s.run(ri, end, l)
					if rq == q {
						s.w.WriteBit(1)
						ri = en
						continue
					}
				}
				s.w.WriteBit(0)
			}
			for st := start; st < end; {
				en, _ := s.run(st, end, l)
				s.emit(st, en, l+1)
				st = en
			}
			return
		}
	}
	// Point list: each point '1' + relative suffix; '0' terminates.
	r := c.suffix[l]
	suffixMask := ^zorder.Key(0)
	if r < 64 {
		suffixMask = (zorder.Key(1) << uint(r)) - 1
	}
	for _, k := range s.keys[start:end] {
		s.w.WriteBit(1)
		s.w.WriteBits(k&suffixMask, r)
	}
	s.w.WriteBit(0)
}

// Decode returns the sorted key set of e.
func (c *Codec) Decode(e Encoded) ([]zorder.Key, error) {
	if e.Empty() {
		return nil, nil
	}
	r := bitstream.NewReader(e.Data, e.Bits)
	var out []zorder.Key
	if err := c.decode(r, 0, 0, &out); err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("quadtree: %d trailing bits after decode", r.Remaining())
	}
	return out, nil
}

func (c *Codec) decode(r *bitstream.Reader, l int, prefix zorder.Key, out *[]zorder.Key) error {
	first := r.ReadBit()
	if r.Err() != nil {
		return r.Err()
	}
	if first == 1 {
		// Point list. The leading '1' of each subsequent point doubles
		// as the "not end of list" marker.
		rbits := c.suffix[l]
		for {
			suffix := r.ReadBits(rbits)
			if r.Err() != nil {
				return r.Err()
			}
			*out = append(*out, prefix<<uint(rbits)|suffix)
			if r.ReadBit() == 0 {
				break
			}
			if r.Err() != nil {
				return r.Err()
			}
		}
		return nil
	}
	// Index node.
	if l >= len(c.levels) {
		return fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return r.Err()
	}
	if mask == 0 {
		return fmt.Errorf("quadtree: index node with empty presence mask")
	}
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		if err := c.decode(r, l+1, prefix<<uint(c.levels[l])|zorder.Key(q), out); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of points in e without materializing keys.
func (c *Codec) Count(e Encoded) (int, error) {
	keys, err := c.Decode(e)
	return len(keys), err
}

// Contains reports whether key k is in e.
func (c *Codec) Contains(e Encoded, k zorder.Key) (bool, error) {
	keys, err := c.Decode(e)
	if err != nil {
		return false, err
	}
	return ContainsKey(keys, k), nil
}

// Union returns the canonical encoding of the set union of a and b.
// Like the paper's UnionJoinAtts it is a single merge pass in key order
// (the DFS wire order is key order), followed by re-emission.
func (c *Codec) Union(a, b Encoded) (Encoded, error) {
	ka, err := c.Decode(a)
	if err != nil {
		return Encoded{}, err
	}
	kb, err := c.Decode(b)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(UnionKeys(ka, kb)), nil
}

// Intersect returns the canonical encoding of the set intersection.
func (c *Codec) Intersect(a, b Encoded) (Encoded, error) {
	ka, err := c.Decode(a)
	if err != nil {
		return Encoded{}, err
	}
	kb, err := c.Decode(b)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(IntersectKeys(ka, kb)), nil
}

// Insert returns the canonical encoding of e plus key k.
func (c *Codec) Insert(e Encoded, k zorder.Key) (Encoded, error) {
	keys, err := c.Decode(e)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(UnionKeys(keys, []zorder.Key{k})), nil
}

// NormalizeKeys returns a sorted, duplicate-free copy of keys.
func NormalizeKeys(keys []zorder.Key) []zorder.Key {
	if len(keys) == 0 {
		return nil
	}
	out := append([]zorder.Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// UnionKeys merges two sorted key sets.
func UnionKeys(a, b []zorder.Key) []zorder.Key {
	out := make([]zorder.Key, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IntersectKeys intersects two sorted key sets.
func IntersectKeys(a, b []zorder.Key) []zorder.Key {
	var out []zorder.Key
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsKey reports whether sorted keys contains k.
func ContainsKey(keys []zorder.Key, k zorder.Key) bool {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i < len(keys) && keys[i] == k
}
