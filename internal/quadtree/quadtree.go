// Package quadtree implements the paper's compact, pointerless
// region-quadtree representation of join-attribute tuple sets (§V-C,
// Figs. 8 and 9).
//
// A set of Z-order keys (package zorder) is stored as a bitstring in
// depth-first order. At every position there is either an index node —
// a '0' bit followed by a presence mask over the quadrants of the next
// level — or a list of points: each point is a '1' bit followed by the
// key's remaining bits relative to the current path, and the list is
// terminated by a '0' bit. The decomposition stops exactly when listing
// the points costs fewer bits than subdividing further (the paper's
// cost-based decomposition threshold), which makes the encoding canonical:
// equal sets encode to equal bitstrings.
//
// The topmost level consumes the relation-flag bits, so the root index
// node "represents the relation flags" as in the paper. Because levels
// may consume different bit counts (unequal dimension widths), the level
// schedule comes from zorder.Grid.Levels().
package quadtree

import (
	"fmt"
	"sort"

	"sensjoin/internal/bitstream"
	"sensjoin/internal/zorder"
)

// Encoded is a wire-format quadtree: Bits significant bits in Data.
// The zero value is the empty set.
type Encoded struct {
	Data []byte
	Bits int
}

// ByteLen returns the wire size in bytes.
func (e Encoded) ByteLen() int { return (e.Bits + 7) / 8 }

// Empty reports whether the set has no points.
func (e Encoded) Empty() bool { return e.Bits == 0 }

// Codec encodes and decodes key sets for one level schedule.
type Codec struct {
	levels []int
	total  int
	// suffix[l] is the number of key bits remaining below level l.
	suffix []int
}

// NewCodec builds a codec for the given per-level bit widths (the flag
// level first), as produced by zorder.Grid.Levels().
func NewCodec(levels []int) (*Codec, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("quadtree: empty level schedule")
	}
	c := &Codec{levels: append([]int(nil), levels...)}
	for i, l := range levels {
		if l < 1 || l > 16 {
			return nil, fmt.Errorf("quadtree: level %d has invalid width %d", i, l)
		}
		c.total += l
	}
	if c.total > 64 {
		return nil, fmt.Errorf("quadtree: %d total bits exceed 64", c.total)
	}
	c.suffix = make([]int, len(levels)+1)
	c.suffix[len(levels)] = 0
	for i := len(levels) - 1; i >= 0; i-- {
		c.suffix[i] = c.suffix[i+1] + levels[i]
	}
	return c, nil
}

// TotalBits returns the key width the codec expects.
func (c *Codec) TotalBits() int { return c.total }

// Encode produces the canonical wire form of the given keys. The input
// is not modified; duplicates are removed.
func (c *Codec) Encode(keys []zorder.Key) Encoded {
	set := NormalizeKeys(keys)
	if len(set) == 0 {
		return Encoded{}
	}
	w := bitstream.NewWriter(len(set) * (c.total + 2))
	c.emit(w, set, 0)
	return Encoded{Data: w.Bytes(), Bits: w.Len()}
}

// cost returns the encoded size in bits of keys at level l when choosing
// optimally between a point list and a subdivision.
func (c *Codec) cost(keys []zorder.Key, l int) int {
	costList := len(keys)*(1+c.suffix[l]) + 1
	if l == len(c.levels) || len(keys) == 1 {
		return costList
	}
	costSplit := 1 + (1 << uint(c.levels[l]))
	for _, part := range c.partition(keys, l) {
		if len(part) > 0 {
			costSplit += c.cost(part, l+1)
		}
	}
	if costList <= costSplit {
		return costList
	}
	return costSplit
}

// partition splits keys (sorted) into the quadrants of level l.
func (c *Codec) partition(keys []zorder.Key, l int) [][]zorder.Key {
	fanout := 1 << uint(c.levels[l])
	shift := uint(c.suffix[l+1])
	mask := zorder.Key(fanout - 1)
	parts := make([][]zorder.Key, fanout)
	start := 0
	for start < len(keys) {
		q := (keys[start] >> shift) & mask
		end := start
		for end < len(keys) && (keys[end]>>shift)&mask == q {
			end++
		}
		parts[q] = keys[start:end]
		start = end
	}
	return parts
}

func (c *Codec) emit(w *bitstream.Writer, keys []zorder.Key, l int) {
	costList := len(keys)*(1+c.suffix[l]) + 1
	mustList := l == len(c.levels) || len(keys) == 1
	if !mustList {
		costSplit := 1 + (1 << uint(c.levels[l]))
		parts := c.partition(keys, l)
		for _, part := range parts {
			if len(part) > 0 {
				costSplit += c.cost(part, l+1)
			}
		}
		if costSplit < costList {
			// Index node: '0' + presence mask, then children in
			// quadrant order.
			w.WriteBit(0)
			fanout := 1 << uint(c.levels[l])
			for q := 0; q < fanout; q++ {
				w.WriteBool(len(parts[q]) > 0)
			}
			for q := 0; q < fanout; q++ {
				if len(parts[q]) > 0 {
					c.emit(w, parts[q], l+1)
				}
			}
			return
		}
	}
	// Point list: each point '1' + relative suffix; '0' terminates.
	r := c.suffix[l]
	suffixMask := ^zorder.Key(0)
	if r < 64 {
		suffixMask = (zorder.Key(1) << uint(r)) - 1
	}
	for _, k := range keys {
		w.WriteBit(1)
		w.WriteBits(k&suffixMask, r)
	}
	w.WriteBit(0)
}

// Decode returns the sorted key set of e.
func (c *Codec) Decode(e Encoded) ([]zorder.Key, error) {
	if e.Empty() {
		return nil, nil
	}
	r := bitstream.NewReader(e.Data, e.Bits)
	var out []zorder.Key
	if err := c.decode(r, 0, 0, &out); err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("quadtree: %d trailing bits after decode", r.Remaining())
	}
	return out, nil
}

func (c *Codec) decode(r *bitstream.Reader, l int, prefix zorder.Key, out *[]zorder.Key) error {
	first := r.ReadBit()
	if r.Err() != nil {
		return r.Err()
	}
	if first == 1 {
		// Point list. The leading '1' of each subsequent point doubles
		// as the "not end of list" marker.
		rbits := c.suffix[l]
		for {
			suffix := r.ReadBits(rbits)
			if r.Err() != nil {
				return r.Err()
			}
			*out = append(*out, prefix<<uint(rbits)|suffix)
			if r.ReadBit() == 0 {
				break
			}
			if r.Err() != nil {
				return r.Err()
			}
		}
		return nil
	}
	// Index node.
	if l >= len(c.levels) {
		return fmt.Errorf("quadtree: index node below the deepest level")
	}
	fanout := 1 << uint(c.levels[l])
	mask := r.ReadBits(fanout)
	if r.Err() != nil {
		return r.Err()
	}
	if mask == 0 {
		return fmt.Errorf("quadtree: index node with empty presence mask")
	}
	for q := 0; q < fanout; q++ {
		if mask&(1<<uint(fanout-1-q)) == 0 {
			continue
		}
		if err := c.decode(r, l+1, prefix<<uint(c.levels[l])|zorder.Key(q), out); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of points in e without materializing keys.
func (c *Codec) Count(e Encoded) (int, error) {
	keys, err := c.Decode(e)
	return len(keys), err
}

// Contains reports whether key k is in e.
func (c *Codec) Contains(e Encoded, k zorder.Key) (bool, error) {
	keys, err := c.Decode(e)
	if err != nil {
		return false, err
	}
	return ContainsKey(keys, k), nil
}

// Union returns the canonical encoding of the set union of a and b.
// Like the paper's UnionJoinAtts it is a single merge pass in key order
// (the DFS wire order is key order), followed by re-emission.
func (c *Codec) Union(a, b Encoded) (Encoded, error) {
	ka, err := c.Decode(a)
	if err != nil {
		return Encoded{}, err
	}
	kb, err := c.Decode(b)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(UnionKeys(ka, kb)), nil
}

// Intersect returns the canonical encoding of the set intersection.
func (c *Codec) Intersect(a, b Encoded) (Encoded, error) {
	ka, err := c.Decode(a)
	if err != nil {
		return Encoded{}, err
	}
	kb, err := c.Decode(b)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(IntersectKeys(ka, kb)), nil
}

// Insert returns the canonical encoding of e plus key k.
func (c *Codec) Insert(e Encoded, k zorder.Key) (Encoded, error) {
	keys, err := c.Decode(e)
	if err != nil {
		return Encoded{}, err
	}
	return c.Encode(UnionKeys(keys, []zorder.Key{k})), nil
}

// NormalizeKeys returns a sorted, duplicate-free copy of keys.
func NormalizeKeys(keys []zorder.Key) []zorder.Key {
	if len(keys) == 0 {
		return nil
	}
	out := append([]zorder.Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// UnionKeys merges two sorted key sets.
func UnionKeys(a, b []zorder.Key) []zorder.Key {
	out := make([]zorder.Key, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IntersectKeys intersects two sorted key sets.
func IntersectKeys(a, b []zorder.Key) []zorder.Key {
	var out []zorder.Key
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsKey reports whether sorted keys contains k.
func ContainsKey(keys []zorder.Key, k zorder.Key) bool {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i < len(keys) && keys[i] == k
}
