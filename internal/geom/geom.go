// Package geom provides the small planar-geometry vocabulary used by the
// sensor-network simulator: points, rectangles, Euclidean distance, and a
// deterministic 64-bit hash used for reproducible per-location noise.
package geom

import "math"

// Point is a location in the deployment plane, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
// It avoids the square root for range tests.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns a square rectangle with the given side anchored at (0,0).
func Square(side float64) Rect {
	return Rect{0, 0, side, side}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Corner returns the lower-left corner of r.
func (r Rect) Corner() Point { return Point{r.MinX, r.MinY} }

// Lerp interpolates within r: fx, fy in [0,1] map to the corresponding
// fraction of the rectangle's extent.
func (r Rect) Lerp(fx, fy float64) Point {
	return Point{r.MinX + fx*r.Width(), r.MinY + fy*r.Height()}
}

// Hash64 mixes an arbitrary set of 64-bit words into a single hash using
// the splitmix64 finalizer. It is used to derive reproducible pseudo-random
// values from coordinates and seeds without keeping RNG state per node.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = mix64(h)
	}
	return h
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashUnit maps the hash of words to a float64 uniform in [0,1).
func HashUnit(words ...uint64) float64 {
	return float64(Hash64(words...)>>11) / float64(1<<53)
}

// HashNorm maps the hash of words to an approximately standard-normal
// value, using the sum of four uniforms (Irwin-Hall) shifted and scaled.
// It is cheap, deterministic, and close enough to Gaussian for sensor
// measurement noise.
func HashNorm(words ...uint64) float64 {
	h := Hash64(words...)
	var s float64
	for i := 0; i < 4; i++ {
		s += float64((h>>(16*uint(i)))&0xffff) / 65536.0
	}
	// Sum of 4 uniforms: mean 2, variance 4/12. Normalize.
	return (s - 2) / math.Sqrt(4.0/12.0)
}
