package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if d := Dist(Point{1, 1}, Point{1, 1}); d != 0 {
		t.Fatalf("Dist same point = %g, want 0", d)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Limit magnitude to avoid overflow-driven mismatches.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		p, q := Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}
		d := Dist(p, q)
		return math.Abs(d*d-Dist2(p, q)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := Square(10)
	if r.Width() != 10 || r.Height() != 10 || r.Area() != 100 {
		t.Fatalf("Square(10) dims wrong: %+v", r)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) || !r.Contains(Point{5, 5}) {
		t.Fatal("Contains should include boundary and interior")
	}
	if r.Contains(Point{10.001, 5}) || r.Contains(Point{-0.001, 5}) {
		t.Fatal("Contains should exclude exterior")
	}
	if c := r.Center(); c != (Point{5, 5}) {
		t.Fatalf("Center = %+v, want (5,5)", c)
	}
	if c := r.Corner(); c != (Point{0, 0}) {
		t.Fatalf("Corner = %+v, want (0,0)", c)
	}
}

func TestLerp(t *testing.T) {
	r := Rect{10, 20, 30, 60}
	if p := r.Lerp(0, 0); p != (Point{10, 20}) {
		t.Fatalf("Lerp(0,0) = %+v", p)
	}
	if p := r.Lerp(1, 1); p != (Point{30, 60}) {
		t.Fatalf("Lerp(1,1) = %+v", p)
	}
	if p := r.Lerp(0.5, 0.5); p != (Point{20, 40}) {
		t.Fatalf("Lerp(0.5,0.5) = %+v", p)
	}
}

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(1, 2, 3)
	b := Hash64(1, 2, 3)
	if a != b {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(3, 2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collision on trivial inputs")
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		u := HashUnit(i)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit(%d) = %g out of [0,1)", i, u)
		}
	}
}

func TestHashUnitUniformity(t *testing.T) {
	// Coarse uniformity: 10 buckets over 10k samples should each hold
	// roughly 1000 +- 20%.
	counts := make([]int, 10)
	for i := uint64(0); i < 10000; i++ {
		counts[int(HashUnit(i, 42)*10)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d samples, expected ~1000", b, c)
		}
	}
}

func TestHashNormMoments(t *testing.T) {
	var sum, sum2 float64
	n := 20000
	for i := 0; i < n; i++ {
		v := HashNorm(uint64(i), 7)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("HashNorm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("HashNorm variance = %g, want ~1", variance)
	}
}
