package routing

import (
	"sort"

	"sensjoin/internal/topology"
)

// Repair re-parents only the damaged part of a tree instead of
// rebuilding it from scratch (the generalization of
// RebuildTreeAvoidingFailures that mid-round repair needs: a full
// rebuild would re-shuffle healthy subtrees and invalidate the slot
// schedule of traffic already in flight).
//
// It finds the orphaned set — every descendant of a tree edge that
// broken reports unusable, plus alive nodes the old tree never reached
// (rejoins) — and re-attaches exactly those nodes onto the surviving
// tree by a multi-source BFS over the live neighbor lists, preferring
// shallow parents and steering around avoided links (the reliable
// transport's exhausted links) unless they are the only way in, exactly
// like BuildTreeAvoiding's two-pass construction. Every node outside
// the orphaned set keeps its parent, children order and depth.
//
// t is never mutated (the package's immutability contract); the repaired
// tree is a fresh value. When no tree edge is broken and no rejoined
// node needs attaching, t itself is returned with a nil re-attach list,
// so callers can cheaply probe "is repair needed". Orphans with no live
// path to the survivors stay unreachable (Depth -1) in the repaired
// tree — scoped recovery reports them as missing subtrees.
func Repair(t *Tree, neighbors [][]topology.NodeID, broken, avoid func(parent, child topology.NodeID) bool) (*Tree, []topology.NodeID) {
	n := len(t.Parent)
	orphan := make([]bool, n)
	var mark func(v topology.NodeID)
	mark = func(v topology.NodeID) {
		if orphan[v] {
			return
		}
		orphan[v] = true
		for _, c := range t.Children[v] {
			mark(c)
		}
	}
	any := false
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if id == t.Root {
			continue
		}
		if t.Depth[i] == -1 {
			// Not in the old tree (dead at build time, or severed by an
			// earlier failure): eligible for attachment if it has live
			// links now.
			if len(neighbors[i]) > 0 {
				orphan[i] = true
				any = true
			}
			continue
		}
		if p := t.Parent[i]; p != NoParent && broken(p, id) {
			mark(id)
			any = true
		}
	}
	if !any {
		return t, nil
	}

	parent := append([]topology.NodeID(nil), t.Parent...)
	depth := make([]int, n)
	var queue []topology.NodeID
	for i := 0; i < n; i++ {
		if orphan[i] {
			parent[i] = NoParent
			depth[i] = -1
			continue
		}
		depth[i] = t.Depth[i]
		if t.Depth[i] >= 0 {
			queue = append(queue, topology.NodeID(i))
		}
	}
	byDepth := func(q []topology.NodeID) {
		sort.Slice(q, func(i, k int) bool {
			if depth[q[i]] != depth[q[k]] {
				return depth[q[i]] < depth[q[k]]
			}
			return q[i] < q[k]
		})
	}
	attach := func(u, v topology.NodeID) {
		parent[v] = u
		depth[v] = depth[u] + 1
	}
	// Pass 1: attach orphans over links that are neither broken nor
	// avoided, expanding from the surviving tree in depth order. Broken
	// links may still appear in the live neighbor lists (an exhausted
	// link is up, just untrustworthy) — they are last-resort only.
	prefer := func(u, v topology.NodeID) bool {
		return !broken(u, v) && (avoid == nil || !avoid(u, v))
	}
	byDepth(queue)
	reached := append([]topology.NodeID(nil), queue...)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors[u] {
			if orphan[v] && parent[v] == NoParent && v != t.Root && prefer(u, v) {
				attach(u, v)
				queue = append(queue, v)
				reached = append(reached, v)
			}
		}
	}
	// Pass 2: stragglers through avoided links — connectivity beats link
	// quality, exactly as in BuildTreeAvoiding.
	byDepth(reached)
	queue = reached
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors[u] {
			if orphan[v] && parent[v] == NoParent && v != t.Root {
				attach(u, v)
				queue = append(queue, v)
			}
		}
	}
	var reattached []topology.NodeID
	for i := 0; i < n; i++ {
		if orphan[i] && parent[i] != NoParent {
			reattached = append(reattached, topology.NodeID(i))
		}
	}
	nt, err := FromParents(parent, t.Root)
	if err != nil {
		// Unreachable: every parent we wrote is an in-range node id.
		panic("routing: repair produced an invalid parent vector: " + err.Error())
	}
	return nt, reattached
}
