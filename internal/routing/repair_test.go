package routing

import (
	"testing"

	"sensjoin/internal/topology"
)

// gridNeighbors builds the neighbor lists of a small grid deployment.
func gridNeighbors(t *testing.T) (*topology.Deployment, [][]topology.NodeID) {
	t.Helper()
	dep := topology.Grid(6, 6, 35, 50)
	return dep, dep.Neighbors
}

func neverBroken(parent, child topology.NodeID) bool { return false }

func TestRepairNoDamageReturnsSameTree(t *testing.T) {
	_, nb := gridNeighbors(t)
	tree := BuildTree(nb, topology.BaseStation)
	nt, re := Repair(tree, nb, neverBroken, nil)
	if nt != tree {
		t.Fatalf("repair of an undamaged tree built a new tree")
	}
	if len(re) != 0 {
		t.Fatalf("repair of an undamaged tree re-attached %v", re)
	}
}

func TestRepairReattachesOnlyOrphans(t *testing.T) {
	_, nb := gridNeighbors(t)
	tree := BuildTree(nb, topology.BaseStation)
	// Sever the deepest non-leaf subtree's uplink.
	var victim topology.NodeID = -1
	for i := range tree.Parent {
		id := topology.NodeID(i)
		if id == tree.Root || !tree.Reachable(id) || len(tree.Children[id]) == 0 {
			continue
		}
		if victim == -1 || tree.Depth[id] > tree.Depth[victim] {
			victim = id
		}
	}
	p := tree.Parent[victim]
	broken := func(a, b topology.NodeID) bool { return a == p && b == victim }
	nt, re := Repair(tree, nb, broken, nil)
	if nt == tree {
		t.Fatalf("severed uplink did not trigger repair")
	}
	if err := nt.Validate(nb); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	// The orphaned set is victim + descendants; exactly those may change
	// parent, and all must be re-attached (the grid is well-connected).
	orphans := map[topology.NodeID]bool{victim: true}
	var mark func(v topology.NodeID)
	mark = func(v topology.NodeID) {
		for _, c := range tree.Children[v] {
			orphans[c] = true
			mark(c)
		}
	}
	mark(victim)
	for i := range tree.Parent {
		id := topology.NodeID(i)
		if orphans[id] {
			if !nt.Reachable(id) {
				t.Fatalf("orphan %d not re-attached", id)
			}
			continue
		}
		if nt.Parent[i] != tree.Parent[i] {
			t.Fatalf("intact node %d changed parent %d -> %d", id, tree.Parent[i], nt.Parent[i])
		}
		if nt.Depth[i] != tree.Depth[i] {
			t.Fatalf("intact node %d changed depth %d -> %d", id, tree.Depth[i], nt.Depth[i])
		}
	}
	if nt.Parent[victim] == p {
		t.Fatalf("repair re-attached %d through the broken link to %d", victim, p)
	}
	seen := map[topology.NodeID]bool{}
	for _, id := range re {
		if !orphans[id] {
			t.Fatalf("re-attached list contains non-orphan %d", id)
		}
		seen[id] = true
	}
	for id := range orphans {
		if !seen[id] {
			t.Fatalf("orphan %d missing from the re-attached list", id)
		}
	}
}

func TestRepairAvoidsBadLinksUnlessOnlyPath(t *testing.T) {
	// Line 0-1-2-3: break 1->2; the only way back for {2,3} is via the
	// avoided link 1->2 (or 2's own broken uplink). Avoidance must lose
	// to connectivity.
	dep := topology.Line(3, 40, 50)
	nb := dep.Neighbors
	tree := BuildTree(nb, topology.BaseStation)
	broken := func(a, b topology.NodeID) bool { return a == 1 && b == 2 }
	avoid := func(a, b topology.NodeID) bool { return (a == 1 && b == 2) || (a == 2 && b == 1) }
	nt, re := Repair(tree, nb, broken, avoid)
	if err := nt.Validate(nb); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	if !nt.Reachable(2) || !nt.Reachable(3) {
		t.Fatalf("stragglers not attached through the avoided last-resort link")
	}
	if len(re) != 2 {
		t.Fatalf("re-attached %v, want nodes 2 and 3", re)
	}
}

func TestRepairLeavesUnreachableOrphans(t *testing.T) {
	// Line 0-1-2-3: node 1 is the cut vertex; with every link of node 1
	// broken, 1..3 have no path and must stay unreachable.
	dep := topology.Line(3, 40, 50)
	tree := BuildTree(dep.Neighbors, topology.BaseStation)
	// Live neighbor lists with node 1 gone entirely.
	nb := make([][]topology.NodeID, len(dep.Neighbors))
	for i, l := range dep.Neighbors {
		if i == 1 {
			continue
		}
		for _, v := range l {
			if v != 1 {
				nb[i] = append(nb[i], v)
			}
		}
	}
	broken := func(a, b topology.NodeID) bool { return a == 1 || b == 1 }
	nt, re := Repair(tree, nb, broken, nil)
	if len(re) != 0 {
		t.Fatalf("re-attached %v across a true partition", re)
	}
	for _, id := range []topology.NodeID{1, 2, 3} {
		if nt.Reachable(id) {
			t.Fatalf("partitioned node %d marked reachable", id)
		}
	}
}

// TestRepairAttachesRejoiningNode: a node the old tree never reached
// (dead at build time) with live links now must be adopted.
func TestRepairAttachesRejoiningNode(t *testing.T) {
	_, nb := gridNeighbors(t)
	full := BuildTree(nb, topology.BaseStation)
	// Build a tree with one leaf missing (as if dead at build time).
	leaf := topology.NodeID(-1)
	for i := range full.Parent {
		id := topology.NodeID(i)
		if id != full.Root && full.IsLeaf(id) {
			leaf = id
			break
		}
	}
	parent := append([]topology.NodeID(nil), full.Parent...)
	parent[leaf] = NoParent
	tree, err := FromParents(parent, topology.BaseStation)
	if err != nil {
		t.Fatal(err)
	}
	nt, re := Repair(tree, nb, neverBroken, nil)
	if !nt.Reachable(leaf) {
		t.Fatalf("rejoining node %d not adopted", leaf)
	}
	if len(re) != 1 || re[0] != leaf {
		t.Fatalf("re-attached %v, want [%d]", re, leaf)
	}
}
