package routing

import (
	"testing"

	"sensjoin/internal/geom"
	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

func protoSetup(t *testing.T, seed int64) (*netsim.Sim, *netsim.Network, *topology.Deployment) {
	t.Helper()
	d, err := topology.Generate(topology.Config{
		Nodes: 150, Area: geom.Square(350), Range: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim, d, netsim.DefaultRadio(), nil)
	return sim, net, d
}

func TestProtocolConvergesToMinHop(t *testing.T) {
	sim, net, d := protoSetup(t, 1)
	p := NewProtocol(net, 10)
	p.RunRound()
	sim.Run()
	got, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := BuildTree(d.Neighbors, topology.BaseStation)
	if got.ReachableCount() != d.N() {
		t.Fatalf("protocol tree reaches %d of %d", got.ReachableCount(), d.N())
	}
	for i := range got.Depth {
		if got.Depth[i] != want.Depth[i] {
			t.Fatalf("node %d: protocol depth %d, BFS depth %d", i, got.Depth[i], want.Depth[i])
		}
	}
	if err := got.Validate(d.Neighbors); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRepairsAfterLinkFailure(t *testing.T) {
	sim, net, d := protoSetup(t, 2)
	p := NewProtocol(net, 10)
	p.RunRound()
	sim.Run()
	tr, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Cut the link from some depth-2 node to its parent; node must find
	// another route on the next round (or stay unreachable if none).
	var victim topology.NodeID = -1
	for i := 1; i < d.N(); i++ {
		if tr.Depth[i] == 2 && len(d.Neighbors[i]) > 1 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no suitable victim in this topology")
	}
	net.LinkDown(victim, tr.Parent[victim])
	p.RunRound()
	sim.Run()
	tr2, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Reachable(victim) && tr2.Parent[victim] == tr.Parent[victim] {
		t.Fatal("victim still routes through the downed link")
	}
	if err := tr2.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolHealsAfterNodeDeath(t *testing.T) {
	sim, net, d := protoSetup(t, 3)
	p := NewProtocol(net, 10)
	p.RunRound()
	sim.Run()
	tr, _ := p.Snapshot()
	// Kill a depth-1 node with children; its subtree must re-attach.
	var victim topology.NodeID = -1
	for i := 1; i < d.N(); i++ {
		if tr.Depth[i] == 1 && len(tr.Children[i]) > 0 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no depth-1 node with children")
	}
	orphans := tr.Children[victim]
	net.KillNode(victim)
	p.RunRound()
	sim.Run()
	tr2, _ := p.Snapshot()
	for _, o := range orphans {
		if tr2.Reachable(o) && tr2.Parent[o] == victim {
			t.Fatalf("orphan %d still routed through dead node", o)
		}
	}
}

func TestProtocolBeaconAccounting(t *testing.T) {
	d, err := topology.Generate(topology.Config{
		Nodes: 60, Area: geom.Square(250), Range: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSim()
	acct := &countingAcct{}
	net := netsim.NewNetwork(sim, d, netsim.DefaultRadio(), acct)
	p := NewProtocol(net, 10)
	p.RunRound()
	sim.Run()
	if acct.phase != PhaseBeacon {
		t.Fatalf("beacons accounted under %q, want %q", acct.phase, PhaseBeacon)
	}
	// Every node rebroadcasts at least once; improvements may add more.
	if acct.txPackets < int64(d.N()) {
		t.Fatalf("only %d beacon transmissions for %d nodes", acct.txPackets, d.N())
	}
}

type countingAcct struct {
	txPackets int64
	phase     string
}

func (a *countingAcct) OnTx(n netsim.NodeID, phase string, p, b int) {
	a.txPackets += int64(p)
	a.phase = phase
}
func (a *countingAcct) OnRx(n netsim.NodeID, phase string, p, b int) {}

func TestProtocolHealedTreeMatchesBFS(t *testing.T) {
	// After failures, the next round's tree must match BFS hop counts
	// over the live links: same-round improvements have to propagate, or
	// descendants keep the stale longer path until another round.
	sim, net, d := protoSetup(t, 6)
	p := NewProtocol(net, 10)
	p.RunRound()
	sim.Run()
	tr, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Cut every depth-1 node's link to the base station except one, so
	// large subtrees must re-route through a single corridor.
	kept := false
	for i := 1; i < d.N(); i++ {
		if tr.Depth[i] == 1 {
			if !kept {
				kept = true
				continue
			}
			net.LinkDown(topology.NodeID(i), topology.BaseStation)
		}
	}
	p.RunRound()
	sim.Run()
	healed, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := BuildTree(net.LiveNeighbors(), topology.BaseStation)
	for i := range healed.Depth {
		if want.Reachable(topology.NodeID(i)) != healed.Reachable(topology.NodeID(i)) {
			t.Fatalf("node %d: reachability differs from BFS over live links", i)
		}
		if want.Reachable(topology.NodeID(i)) && healed.Depth[i] != want.Depth[i] {
			t.Fatalf("node %d: healed depth %d, BFS depth %d", i, healed.Depth[i], want.Depth[i])
		}
	}
}

func TestProtocolRebroadcastsBounded(t *testing.T) {
	// Per round, a node rebroadcasts only on strict improvement: every
	// announcement carries a strictly lower hop count than the node's
	// previous one, which bounds the per-node beacon count by the node's
	// initial distance — and in particular rules out re-flooding on
	// tie-break parent changes.
	sim, net, _ := protoSetup(t, 7)
	announced := map[netsim.NodeID][]int{}
	p := NewProtocol(net, 10)
	net.SetTracer(func(ev netsim.TraceEvent) {
		if ev.Event == "tx" && ev.Phase == PhaseBeacon {
			announced[ev.Src] = append(announced[ev.Src], p.hops[ev.Src])
		}
	})
	p.RunRound()
	sim.Run()
	for id, hops := range announced {
		for i := 1; i < len(hops); i++ {
			if hops[i] >= hops[i-1] {
				t.Fatalf("node %d announced hop counts %v: not strictly decreasing", id, hops)
			}
		}
	}
}

func TestProtocolStartSchedulesRounds(t *testing.T) {
	sim, net, _ := protoSetup(t, 5)
	p := NewProtocol(net, 10)
	p.Start()
	sim.RunUntil(25)
	if p.Round() < 3 {
		t.Fatalf("after 25 s with 10 s interval, rounds = %d, want >= 3", p.Round())
	}
}
