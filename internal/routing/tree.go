// Package routing provides the collection tree that SENS-Join and the
// external join forward data along.
//
// The paper builds on the TinyOS collection-tree protocol (CTP, [17]):
// "based on a periodic beaconing mechanism, each node maintains a parent
// that minimizes the hop count to the base station" (§III). This package
// offers both a deterministic instant construction (BuildTree, used by the
// experiment harness) and an event-driven beaconing protocol over the
// simulator (Protocol, used to demonstrate tree formation and repair after
// link failures, §IV-F).
package routing

import (
	"fmt"
	"sort"

	"sensjoin/internal/topology"
)

// NoParent marks the base station and unreachable nodes.
const NoParent topology.NodeID = -1

// Tree is a routing tree rooted at the base station.
//
// Immutability contract: BuildTree (and Protocol's tree extraction)
// fully populate a Tree before returning it, and nothing mutates it
// afterwards — repair is modeled by building a *new* tree over the live
// links and swapping the pointer (core.Runner.RebuildTree). Trees are
// therefore safe to share across concurrently running simulations.
type Tree struct {
	// Parent[i] is the parent of node i, NoParent for the root and for
	// unreachable nodes.
	Parent []topology.NodeID
	// Children[i] lists the children of node i, ascending.
	Children [][]topology.NodeID
	// Depth[i] is the hop count of node i to the root; -1 if unreachable.
	Depth []int
	// Descendants[i] counts all nodes in i's subtree excluding i.
	Descendants []int
	// MaxDepth is the largest depth of any reachable node.
	MaxDepth int
	// Root is the base station id.
	Root topology.NodeID
}

// BuildTree constructs the minimum-hop-count tree over the neighbor lists
// by breadth-first search. Ties are broken toward the lowest parent id,
// matching the deterministic outcome of the beacon protocol.
func BuildTree(neighbors [][]topology.NodeID, root topology.NodeID) *Tree {
	n := len(neighbors)
	t := &Tree{
		Parent:      make([]topology.NodeID, n),
		Children:    make([][]topology.NodeID, n),
		Depth:       make([]int, n),
		Descendants: make([]int, n),
		Root:        root,
	}
	for i := range t.Parent {
		t.Parent[i] = NoParent
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if t.Depth[u] > t.MaxDepth {
			t.MaxDepth = t.Depth[u]
		}
		for _, v := range neighbors[u] {
			if t.Depth[v] == -1 {
				t.Depth[v] = t.Depth[u] + 1
				t.Parent[v] = u
				t.Children[u] = append(t.Children[u], v)
				queue = append(queue, v)
			}
		}
	}
	t.computeDescendants()
	return t
}

// BuildTreeAvoiding constructs a minimum-hop tree like BuildTree but
// steers around avoided links: the reliable transport reports directed
// links whose retransmissions exhausted, and the repair prefers parents
// reachable without them. Avoided links are used only as a last resort,
// to attach nodes that have no other path — connectivity beats link
// quality. A nil avoid is equivalent to BuildTree.
func BuildTreeAvoiding(neighbors [][]topology.NodeID, root topology.NodeID, avoid func(parent, child topology.NodeID) bool) *Tree {
	if avoid == nil {
		return BuildTree(neighbors, root)
	}
	n := len(neighbors)
	t := &Tree{
		Parent:      make([]topology.NodeID, n),
		Children:    make([][]topology.NodeID, n),
		Depth:       make([]int, n),
		Descendants: make([]int, n),
		Root:        root,
	}
	for i := range t.Parent {
		t.Parent[i] = NoParent
		t.Depth[i] = -1
	}
	attach := func(u, v topology.NodeID) {
		t.Depth[v] = t.Depth[u] + 1
		t.Parent[v] = u
		t.Children[u] = append(t.Children[u], v)
	}
	// Pass 1: BFS over non-avoided links only.
	t.Depth[root] = 0
	queue := []topology.NodeID{root}
	var reached []topology.NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		reached = append(reached, u)
		for _, v := range neighbors[u] {
			if t.Depth[v] == -1 && !avoid(u, v) {
				attach(u, v)
				queue = append(queue, v)
			}
		}
	}
	// Pass 2: attach stragglers through avoided links; BFS continues from
	// the pass-1 tree in depth order, so every node still gets a
	// shallowest available parent and Depth stays parent-consistent.
	sort.Slice(reached, func(i, k int) bool {
		if t.Depth[reached[i]] != t.Depth[reached[k]] {
			return t.Depth[reached[i]] < t.Depth[reached[k]]
		}
		return reached[i] < reached[k]
	})
	queue = reached
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors[u] {
			if t.Depth[v] == -1 {
				attach(u, v)
				queue = append(queue, v)
			}
		}
	}
	for i := range t.Depth {
		if t.Depth[i] > t.MaxDepth {
			t.MaxDepth = t.Depth[i]
		}
	}
	for _, ch := range t.Children {
		sortIDs(ch)
	}
	t.computeDescendants()
	return t
}

// FromParents builds a Tree from a parent vector (used to snapshot the
// beacon protocol's state). Unreachable nodes keep Depth -1.
func FromParents(parent []topology.NodeID, root topology.NodeID) (*Tree, error) {
	n := len(parent)
	t := &Tree{
		Parent:      append([]topology.NodeID(nil), parent...),
		Children:    make([][]topology.NodeID, n),
		Depth:       make([]int, n),
		Descendants: make([]int, n),
		Root:        root,
	}
	for i := range t.Depth {
		t.Depth[i] = -1
	}
	for i := 0; i < n; i++ {
		p := parent[i]
		if topology.NodeID(i) == root {
			continue
		}
		if p == NoParent {
			continue
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("routing: node %d has out-of-range parent %d", i, p)
		}
		t.Children[p] = append(t.Children[p], topology.NodeID(i))
	}
	for _, ch := range t.Children {
		sortIDs(ch)
	}
	// Depths by walking from the root; also detects cycles (nodes in a
	// cycle never get a depth and stay unreachable).
	t.Depth[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if t.Depth[u] > t.MaxDepth {
			t.MaxDepth = t.Depth[u]
		}
		for _, v := range t.Children[u] {
			t.Depth[v] = t.Depth[u] + 1
			queue = append(queue, v)
		}
	}
	t.computeDescendants()
	return t, nil
}

func sortIDs(ids []topology.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func (t *Tree) computeDescendants() {
	for _, u := range t.PostOrder() {
		d := 0
		for _, c := range t.Children[u] {
			d += 1 + t.Descendants[c]
		}
		t.Descendants[u] = d
	}
}

// Reachable reports whether node id has a path to the root.
func (t *Tree) Reachable(id topology.NodeID) bool {
	return id == t.Root || t.Depth[id] >= 0
}

// ReachableCount returns the number of reachable nodes, including the root.
func (t *Tree) ReachableCount() int {
	c := 0
	for i := range t.Depth {
		if t.Depth[i] >= 0 {
			c++
		}
	}
	return c
}

// PostOrder returns the reachable nodes so that every node appears after
// all of its children (leaves first, root last).
func (t *Tree) PostOrder() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.Parent))
	var walk func(u topology.NodeID)
	walk = func(u topology.NodeID) {
		for _, c := range t.Children[u] {
			walk(c)
		}
		out = append(out, u)
	}
	walk(t.Root)
	return out
}

// PreOrder returns the reachable nodes so that every node appears before
// its children (root first).
func (t *Tree) PreOrder() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.Parent))
	var walk func(u topology.NodeID)
	walk = func(u topology.NodeID) {
		out = append(out, u)
		for _, c := range t.Children[u] {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// IsLeaf reports whether node id has no children.
func (t *Tree) IsLeaf(id topology.NodeID) bool { return len(t.Children[id]) == 0 }

// Validate checks structural invariants: the parent of every reachable
// non-root node is reachable with depth one less, and descendant counts
// are consistent. It returns the first violation found.
func (t *Tree) Validate(neighbors [][]topology.NodeID) error {
	for i := range t.Parent {
		id := topology.NodeID(i)
		if id == t.Root {
			if t.Parent[i] != NoParent {
				return fmt.Errorf("routing: root %d has parent %d", id, t.Parent[i])
			}
			continue
		}
		if !t.Reachable(id) {
			continue
		}
		p := t.Parent[i]
		if p == NoParent {
			return fmt.Errorf("routing: reachable node %d has no parent", id)
		}
		if t.Depth[i] != t.Depth[p]+1 {
			return fmt.Errorf("routing: node %d depth %d but parent %d depth %d", id, t.Depth[i], p, t.Depth[p])
		}
		if neighbors != nil {
			found := false
			for _, v := range neighbors[id] {
				if v == p {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("routing: parent %d of node %d is not a neighbor", p, id)
			}
		}
	}
	return nil
}
