package routing

import (
	"sensjoin/internal/metrics"
	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// PhaseBeacon labels beacon traffic in the accounting; experiments exclude
// it when comparing join methods, since tree maintenance is common to all.
const PhaseBeacon = "tree-beacon"

// beaconKind tags beacon messages on the wire.
const beaconKind = 1

// beaconSize is the wire size of a beacon: round number (2B) and hop
// count (2B).
const beaconSize = 4

type beaconPayload struct {
	round int
	hops  int
}

// Protocol is a CTP-style beaconing protocol: each round the base station
// floods a beacon; every node adopts the neighbor announcing the smallest
// hop count as its parent (ties toward the lower id) and rebroadcasts its
// own hop count once per round. Because state is recomputed every round,
// the tree heals itself after link or node failures within one round.
type Protocol struct {
	Net *netsim.Network
	// Interval is the time between beacon rounds in seconds.
	Interval float64

	round    int
	hops     []int
	parent   []topology.NodeID
	sent     []int // freshest round this node has seen
	sentHops []int // hop count last announced this round

	rounds *metrics.Counter // nil-safe live beacon-round counter
}

// EnableMetrics registers a live beacon-round counter on reg (nil
// disables it).
func (p *Protocol) EnableMetrics(reg *metrics.Registry) {
	p.rounds = reg.Counter("sensjoin_routing_beacon_rounds_total", "beacon rounds initiated")
}

// NewProtocol attaches a beacon protocol to net. Call Start to begin
// beaconing; handlers are installed immediately.
func NewProtocol(net *netsim.Network, interval float64) *Protocol {
	n := net.N()
	p := &Protocol{
		Net:      net,
		Interval: interval,
		hops:     make([]int, n),
		parent:   make([]topology.NodeID, n),
		sent:     make([]int, n),
		sentHops: make([]int, n),
	}
	for i := range p.hops {
		p.hops[i] = -1
		p.parent[i] = NoParent
		p.sent[i] = -1
		p.sentHops[i] = -1
	}
	p.Reinstall()
	return p
}

// Reinstall re-registers the protocol's message handlers. Query engines
// take over the per-node handlers for the duration of an execution
// (§III: queries and routing share the single radio stack); call
// Reinstall before the next beacon round after running a query.
func (p *Protocol) Reinstall() {
	for i := 0; i < p.Net.N(); i++ {
		id := topology.NodeID(i)
		p.Net.SetHandler(id, func(m netsim.Message) { p.handle(id, m) })
	}
}

// Start schedules the first beacon round and every following one.
func (p *Protocol) Start() {
	var tick func()
	tick = func() {
		p.RunRound()
		p.Net.Sim.After(p.Interval, tick)
	}
	p.Net.Sim.After(0, tick)
}

// RunRound initiates a single beacon round from the base station. The
// flood itself proceeds via message events.
func (p *Protocol) RunRound() {
	p.round++
	p.rounds.Inc()
	p.hops[topology.BaseStation] = 0
	p.sent[topology.BaseStation] = p.round
	p.Net.Send(netsim.Message{
		Kind:  beaconKind,
		Src:   topology.BaseStation,
		Dst:   netsim.BroadcastID,
		Phase: PhaseBeacon,
		Size:  beaconSize,
		Payload: beaconPayload{
			round: p.round,
			hops:  0,
		},
	})
}

func (p *Protocol) handle(id topology.NodeID, m netsim.Message) {
	if m.Kind != beaconKind {
		return
	}
	b, ok := m.Payload.(beaconPayload)
	if !ok {
		return
	}
	fresh := b.round > roundOf(p, id)
	better := b.hops+1 < p.hops[id] || p.hops[id] < 0
	sameButLower := b.hops+1 == p.hops[id] && m.Src < p.parent[id]
	if fresh {
		// New round: forget last round's distance and adopt.
		p.hops[id] = b.hops + 1
		p.parent[id] = m.Src
		p.setRound(id, b.round)
		p.rebroadcast(id, b.round)
		return
	}
	if b.round != roundOf(p, id) {
		return
	}
	if better {
		// A strictly shorter path must propagate, or descendants keep
		// routing over the stale longer one until the next round. Each
		// rebroadcast announces a strictly lower hop count than the
		// node's previous announcement (sentHops), so the per-round
		// rebroadcast count is bounded by the node's initial distance.
		p.hops[id] = b.hops + 1
		p.parent[id] = m.Src
		p.rebroadcast(id, b.round)
		return
	}
	if sameButLower {
		// Deterministic tie-break toward the lower id. The hop count is
		// unchanged, so neighbors learn nothing new: adopt silently
		// instead of re-flooding the same announcement.
		p.parent[id] = m.Src
	}
}

// roundTrack stores the freshest round seen per node inside sent when the
// node has rebroadcast, plus a shadow array for rounds merely seen.
// To keep the struct small we reuse sent for both purposes: a node
// rebroadcasts only on strict improvement and floods converge in a
// handful of steps at 50 m range.
func roundOf(p *Protocol, id topology.NodeID) int { return p.sent[id] }

func (p *Protocol) setRound(id topology.NodeID, r int) { p.sent[id] = r }

func (p *Protocol) rebroadcast(id topology.NodeID, round int) {
	p.sentHops[id] = p.hops[id]
	p.Net.Send(netsim.Message{
		Kind:  beaconKind,
		Src:   id,
		Dst:   netsim.BroadcastID,
		Phase: PhaseBeacon,
		Size:  beaconSize,
		Payload: beaconPayload{
			round: round,
			hops:  p.hops[id],
		},
	})
}

// Snapshot returns the current tree. Nodes that have not heard a beacon
// in the latest round keep their previous parent; nodes that never heard
// one are unreachable.
func (p *Protocol) Snapshot() (*Tree, error) {
	return FromParents(p.parent, topology.BaseStation)
}

// Round returns the number of beacon rounds initiated so far.
func (p *Protocol) Round() int { return p.round }
