package routing

import (
	"testing"
	"testing/quick"

	"sensjoin/internal/geom"
	"sensjoin/internal/topology"
)

func deployment(t *testing.T, seed int64, n int, side float64) *topology.Deployment {
	t.Helper()
	d, err := topology.Generate(topology.Config{
		Nodes: n, Area: geom.Square(side), Range: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildTreeSpanning(t *testing.T) {
	d := deployment(t, 1, 300, 500)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	if tr.ReachableCount() != d.N() {
		t.Fatalf("tree reaches %d of %d nodes", tr.ReachableCount(), d.N())
	}
	if err := tr.Validate(d.Neighbors); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeMinHop(t *testing.T) {
	// BFS depths are the true minimum hop counts; verify against an
	// independent Bellman-Ford relaxation.
	d := deployment(t, 2, 200, 400)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	n := d.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[0] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			for _, v := range d.Neighbors[u] {
				if dist[u]+1 < dist[v] {
					dist[v] = dist[u] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := 0; i < n; i++ {
		if tr.Depth[i] != dist[i] {
			t.Fatalf("node %d: tree depth %d, true min-hop %d", i, tr.Depth[i], dist[i])
		}
	}
}

func TestPostOrderProperty(t *testing.T) {
	d := deployment(t, 3, 150, 350)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	seen := make(map[topology.NodeID]int)
	for idx, u := range tr.PostOrder() {
		seen[u] = idx
	}
	if len(seen) != tr.ReachableCount() {
		t.Fatalf("post-order visits %d nodes, want %d", len(seen), tr.ReachableCount())
	}
	for u, pidx := range seen {
		for _, c := range tr.Children[u] {
			if seen[c] > pidx {
				t.Fatalf("child %d after parent %d in post-order", c, u)
			}
		}
	}
	// Root must come last.
	if order := tr.PostOrder(); order[len(order)-1] != tr.Root {
		t.Fatal("root not last in post-order")
	}
}

func TestPreOrderProperty(t *testing.T) {
	d := deployment(t, 4, 150, 350)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	order := tr.PreOrder()
	if order[0] != tr.Root {
		t.Fatal("root not first in pre-order")
	}
	pos := make(map[topology.NodeID]int)
	for idx, u := range order {
		pos[u] = idx
	}
	for u := range tr.Children {
		for _, c := range tr.Children[u] {
			if pos[c] < pos[topology.NodeID(u)] {
				t.Fatalf("child %d before parent %d in pre-order", c, u)
			}
		}
	}
}

func TestDescendantCounts(t *testing.T) {
	d := deployment(t, 5, 150, 350)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	// Root's descendants = all other reachable nodes.
	if tr.Descendants[tr.Root] != tr.ReachableCount()-1 {
		t.Fatalf("root descendants = %d, want %d", tr.Descendants[tr.Root], tr.ReachableCount()-1)
	}
	for u := range tr.Children {
		sum := 0
		for _, c := range tr.Children[u] {
			sum += 1 + tr.Descendants[c]
		}
		if tr.Descendants[u] != sum {
			t.Fatalf("node %d descendants inconsistent", u)
		}
	}
	// Leaves have zero descendants.
	for u := range tr.Children {
		if tr.IsLeaf(topology.NodeID(u)) && tr.Descendants[u] != 0 {
			t.Fatalf("leaf %d has %d descendants", u, tr.Descendants[u])
		}
	}
}

func TestFromParentsRoundtrip(t *testing.T) {
	d := deployment(t, 6, 120, 300)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	tr2, err := FromParents(tr.Parent, topology.BaseStation)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Depth {
		if tr.Depth[i] != tr2.Depth[i] {
			t.Fatalf("node %d: depth %d vs %d", i, tr.Depth[i], tr2.Depth[i])
		}
		if tr.Descendants[i] != tr2.Descendants[i] {
			t.Fatalf("node %d: descendants differ", i)
		}
	}
	if tr2.MaxDepth != tr.MaxDepth {
		t.Fatal("max depth differs after roundtrip")
	}
}

func TestFromParentsRejectsOutOfRange(t *testing.T) {
	if _, err := FromParents([]topology.NodeID{NoParent, 99}, 0); err == nil {
		t.Fatal("expected error for out-of-range parent")
	}
}

func TestFromParentsCycleUnreachable(t *testing.T) {
	// 1 and 2 point at each other: both must stay unreachable, no hang.
	tr, err := FromParents([]topology.NodeID{NoParent, 2, 1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reachable(1) || tr.Reachable(2) {
		t.Fatal("cycle nodes must be unreachable")
	}
	if !tr.Reachable(3) {
		t.Fatal("node 3 hangs off the root and must be reachable")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := deployment(t, 7, 100, 300)
	tr := BuildTree(d.Neighbors, topology.BaseStation)
	tr.Depth[5] += 3
	if err := tr.Validate(d.Neighbors); err == nil {
		t.Fatal("Validate must catch a corrupted depth")
	}
}

func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		d, err := topology.Generate(topology.Config{
			Nodes: 80, Area: geom.Square(260), Range: 50, Seed: seed % 10000,
		})
		if err != nil {
			return true // skip unlucky sparse draws
		}
		tr := BuildTree(d.Neighbors, topology.BaseStation)
		return tr.Validate(d.Neighbors) == nil && tr.ReachableCount() == d.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeAvoidingSkipsBadLinks(t *testing.T) {
	d := deployment(t, 3, 250, 450)
	base := BuildTree(d.Neighbors, topology.BaseStation)
	// Avoid some tree edge whose child has an alternative neighbor at the
	// parent's depth: the rebuilt tree must not use it and must stay a
	// valid spanning min-structure.
	var child, parent topology.NodeID = -1, -1
	for i := 1; i < d.N(); i++ {
		id := topology.NodeID(i)
		p := base.Parent[id]
		if p == NoParent {
			continue
		}
		for _, nb := range d.Neighbors[id] {
			if nb != p && base.Depth[nb] == base.Depth[p] {
				child, parent = id, p
			}
		}
		if child >= 0 {
			break
		}
	}
	if child < 0 {
		t.Skip("no avoidable edge with an alternative")
	}
	avoid := func(u, v topology.NodeID) bool {
		return (u == parent && v == child) || (u == child && v == parent)
	}
	tr := BuildTreeAvoiding(d.Neighbors, topology.BaseStation, avoid)
	if tr.Parent[child] == parent {
		t.Fatalf("avoided link %d-%d still used although node %d has an equal-depth alternative",
			parent, child, child)
	}
	if tr.ReachableCount() != base.ReachableCount() {
		t.Fatalf("avoiding one redundant link lost connectivity: %d vs %d nodes",
			tr.ReachableCount(), base.ReachableCount())
	}
	if err := tr.Validate(d.Neighbors); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeAvoidingLastResort(t *testing.T) {
	// A 3-node chain 0-1-2: avoiding the only link to node 1 must still
	// attach it (connectivity beats link quality).
	neighbors := [][]topology.NodeID{{1}, {0, 2}, {1}}
	avoid := func(u, v topology.NodeID) bool { return u == 0 && v == 1 }
	tr := BuildTreeAvoiding(neighbors, 0, avoid)
	if !tr.Reachable(1) || !tr.Reachable(2) {
		t.Fatalf("avoided-but-only link not used as last resort: depths %v", tr.Depth)
	}
	if err := tr.Validate(neighbors); err != nil {
		t.Fatal(err)
	}
	if tr.Parent[1] != 0 || tr.Parent[2] != 1 {
		t.Fatalf("unexpected parents %v", tr.Parent)
	}
}

func TestBuildTreeAvoidingNilMatchesBuildTree(t *testing.T) {
	d := deployment(t, 4, 150, 350)
	a := BuildTree(d.Neighbors, topology.BaseStation)
	b := BuildTreeAvoiding(d.Neighbors, topology.BaseStation, nil)
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] || a.Depth[i] != b.Depth[i] {
			t.Fatalf("node %d differs: parent %d/%d depth %d/%d",
				i, a.Parent[i], b.Parent[i], a.Depth[i], b.Depth[i])
		}
	}
}
