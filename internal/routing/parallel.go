package routing

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sensjoin/internal/topology"
)

// BuildTreeParallel constructs exactly the tree BuildTree builds, with
// the per-level BFS expansion spread over workers. Equality argument: in
// the sequential BFS, the parent of a node v is the earliest-processed
// frontier node that neighbors v, and the next level's processing order
// is "children of frontier node 0 ascending, then children of frontier
// node 1 ascending, ...". The parallel version reproduces both: workers
// race to claim each candidate with the minimum frontier rank
// (atomic-min), and the next frontier is the claimed nodes sorted by
// (parent rank, id). A 50k-node smoke test asserts deep equality against
// BuildTree.
func BuildTreeParallel(neighbors [][]topology.NodeID, root topology.NodeID, workers int) *Tree {
	n := len(neighbors)
	if workers <= 1 || n < 4096 {
		return BuildTree(neighbors, root)
	}
	t := &Tree{
		Parent:      make([]topology.NodeID, n),
		Children:    make([][]topology.NodeID, n),
		Depth:       make([]int, n),
		Descendants: make([]int, n),
		Root:        root,
	}
	for i := range t.Parent {
		t.Parent[i] = NoParent
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	// claim[v] is the minimum frontier rank that reached v this level;
	// stale values from earlier levels are harmless because a claimed
	// node's depth is set before the next level starts.
	claim := make([]int64, n)
	for i := range claim {
		claim[i] = math.MaxInt64
	}
	frontier := []topology.NodeID{root}
	cands := make([][]topology.NodeID, workers)
	level := 0
	for len(frontier) > 0 {
		t.MaxDepth = level
		expand := func(w, lo, hi int) {
			out := cands[w][:0]
			for r := lo; r < hi; r++ {
				u := frontier[r]
				for _, v := range neighbors[u] {
					if t.Depth[v] != -1 {
						continue
					}
					for {
						old := atomic.LoadInt64(&claim[v])
						if int64(r) >= old {
							break
						}
						if atomic.CompareAndSwapInt64(&claim[v], old, int64(r)) {
							if old == math.MaxInt64 {
								out = append(out, v)
							}
							break
						}
					}
				}
			}
			cands[w] = out
		}
		if len(frontier) < 1024 {
			expand(0, 0, len(frontier))
			for w := 1; w < workers; w++ {
				cands[w] = cands[w][:0]
			}
		} else {
			var wg sync.WaitGroup
			chunk := (len(frontier) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if lo > len(frontier) {
					lo = len(frontier)
				}
				if hi > len(frontier) {
					hi = len(frontier)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					expand(w, lo, hi)
				}(w, lo, hi)
			}
			wg.Wait()
		}
		var next []topology.NodeID
		for w := range cands {
			next = append(next, cands[w]...)
		}
		// A candidate can appear in several workers' lists when each saw
		// MaxInt64 before the other's CAS; sorting makes duplicates
		// adjacent and the dedup below drops them.
		sort.Slice(next, func(a, b int) bool {
			if claim[next[a]] != claim[next[b]] {
				return claim[next[a]] < claim[next[b]]
			}
			return next[a] < next[b]
		})
		dst := 0
		for _, v := range next {
			if dst > 0 && v == next[dst-1] {
				continue
			}
			u := frontier[claim[v]]
			t.Depth[v] = level + 1
			t.Parent[v] = u
			t.Children[u] = append(t.Children[u], v)
			claim[v] = math.MaxInt64
			next[dst] = v
			dst++
		}
		frontier = next[:dst]
		level++
	}
	t.computeDescendants()
	return t
}
