package routing

import (
	"reflect"
	"testing"

	"sensjoin/internal/topology"
)

func assertTreesEqual(t *testing.T, seq, par *Tree) {
	t.Helper()
	if !reflect.DeepEqual(seq.Parent, par.Parent) {
		t.Fatal("Parent vectors differ")
	}
	if !reflect.DeepEqual(seq.Depth, par.Depth) {
		t.Fatal("Depth vectors differ")
	}
	if !reflect.DeepEqual(seq.Descendants, par.Descendants) {
		t.Fatal("Descendant counts differ")
	}
	if seq.MaxDepth != par.MaxDepth {
		t.Fatalf("MaxDepth %d != %d", seq.MaxDepth, par.MaxDepth)
	}
	for i := range seq.Children {
		if len(seq.Children[i]) == 0 && len(par.Children[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(seq.Children[i], par.Children[i]) {
			t.Fatalf("Children of %d differ: %v vs %v", i, seq.Children[i], par.Children[i])
		}
	}
}

// TestBuildTreeParallelEquals50k is the scale smoke of the issue: the
// frontier-parallel BFS must reproduce the sequential tree exactly on a
// 50k-node deployment at the paper's density.
func TestBuildTreeParallelEquals50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node deployment in -short mode")
	}
	const n = 50_000
	dep, err := topology.GenerateParallel(topology.Config{
		Nodes: n, Area: topology.ScaledArea(n), Range: 50, Seed: 11,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := BuildTree(dep.Neighbors, topology.BaseStation)
	for _, workers := range []int{2, 4, 8} {
		par := BuildTreeParallel(dep.Neighbors, topology.BaseStation, workers)
		assertTreesEqual(t, seq, par)
	}
}

// TestBuildTreeParallelEqualsSmall covers several random deployments just
// above the parallel-path threshold, where frontiers are small and worker
// chunks uneven.
func TestBuildTreeParallelEqualsSmall(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		const n = 5000
		dep, err := topology.GenerateParallel(topology.Config{
			Nodes: n, Area: topology.ScaledArea(n), Range: 50, Seed: seed,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		seq := BuildTree(dep.Neighbors, topology.BaseStation)
		par := BuildTreeParallel(dep.Neighbors, topology.BaseStation, 3)
		assertTreesEqual(t, seq, par)
	}
}
