package zorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDim(t *testing.T, name string, min, max, res float64) Dim {
	t.Helper()
	d, err := NewDim(name, min, max, res)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func paperGrid(t *testing.T) *Grid {
	t.Helper()
	// The paper's experiment dimensions: temperature at 0.1 degC over
	// [0,40], coordinates at 1 m over [0,1050].
	temp := mustDim(t, "temp", 0, 40, 0.1)
	x := mustDim(t, "x", 0, 1050, 1)
	y := mustDim(t, "y", 0, 1050, 1)
	g, err := NewGrid(2, []Dim{temp, x, y})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewDimSizing(t *testing.T) {
	d := mustDim(t, "temp", 0, 40, 0.1)
	// 401 cells -> 512 -> 9 bits.
	if d.Size != 512 || d.Bits != 9 {
		t.Fatalf("temp dim = %+v, want size 512 bits 9", d)
	}
	x := mustDim(t, "x", 0, 1050, 1)
	// 1051 cells -> 2048 -> 11 bits.
	if x.Size != 2048 || x.Bits != 11 {
		t.Fatalf("x dim = %+v, want size 2048 bits 11", x)
	}
	// Paper's point: 600 values and 900 values both need 10 bits.
	d600 := mustDim(t, "a", 0, 599, 1)
	d900 := mustDim(t, "b", 0, 899, 1)
	if d600.Bits != 10 || d900.Bits != 10 {
		t.Fatalf("600->%d bits, 900->%d bits, want 10 and 10", d600.Bits, d900.Bits)
	}
}

func TestNewDimErrors(t *testing.T) {
	if _, err := NewDim("bad", 5, 5, 1); err == nil {
		t.Fatal("empty range must fail")
	}
	if _, err := NewDim("bad", 0, 10, 0); err == nil {
		t.Fatal("zero resolution must fail")
	}
	if _, err := NewDim("bad", 0, 1e12, 0.0001); err == nil {
		t.Fatal(">32 bit dimension must fail")
	}
}

func TestCellClamping(t *testing.T) {
	d := mustDim(t, "temp", 0, 40, 0.1)
	if d.Cell(-5) != 0 {
		t.Fatal("below range must clamp to cell 0")
	}
	if d.Cell(1e9) != d.Size-1 {
		t.Fatal("above range must clamp to last cell")
	}
	if d.Cell(0) != 0 || d.Cell(0.05) != 0 || d.Cell(0.1) != 1 {
		t.Fatal("cell boundaries wrong")
	}
	if d.Cell(23.25) != 232 {
		t.Fatalf("Cell(23.25) = %d, want 232", d.Cell(23.25))
	}
}

func TestBoundsCoverValue(t *testing.T) {
	d := mustDim(t, "temp", 0, 40, 0.1)
	for i := 0; i < 1000; i++ {
		v := rand.New(rand.NewSource(int64(i))).Float64()*50 - 5
		lo, hi := d.Bounds(d.Cell(v))
		if v < lo || v > hi {
			t.Fatalf("value %g outside its cell bounds [%g, %g]", v, lo, hi)
		}
	}
	// Boundary cells are unbounded on the clamped side.
	lo, _ := d.Bounds(0)
	if !math.IsInf(lo, -1) {
		t.Fatal("cell 0 must extend to -inf")
	}
	_, hi := d.Bounds(d.Size - 1)
	if !math.IsInf(hi, 1) {
		t.Fatal("last cell must extend to +inf")
	}
}

func TestGridTotalBitsAndLevels(t *testing.T) {
	g := paperGrid(t)
	// 2 flags + 9 + 11 + 11 = 33 bits.
	if g.TotalBits != 33 {
		t.Fatalf("TotalBits = %d, want 33", g.TotalBits)
	}
	levels := g.Levels()
	// Level 0: flags (2 bits). Rounds 0..8: all three dims active (3
	// bits); rounds 9..10: only x and y (2 bits).
	if levels[0] != 2 {
		t.Fatalf("levels[0] = %d, want 2", levels[0])
	}
	if len(levels) != 1+11 {
		t.Fatalf("levels count = %d, want 12", len(levels))
	}
	for l := 1; l <= 9; l++ {
		if levels[l] != 3 {
			t.Fatalf("levels[%d] = %d, want 3", l, levels[l])
		}
	}
	for l := 10; l <= 11; l++ {
		if levels[l] != 2 {
			t.Fatalf("levels[%d] = %d, want 2", l, levels[l])
		}
	}
	sum := 0
	for _, b := range levels {
		sum += b
	}
	if sum != g.TotalBits {
		t.Fatalf("levels sum %d != total %d", sum, g.TotalBits)
	}
}

func TestGridErrors(t *testing.T) {
	d := mustDim(t, "a", 0, 100, 1)
	if _, err := NewGrid(0, []Dim{d}); err == nil {
		t.Fatal("zero flag bits must fail")
	}
	if _, err := NewGrid(2, nil); err == nil {
		t.Fatal("no dims must fail")
	}
	wide := mustDim(t, "w", 0, 4e9, 1) // 32 bits
	if _, err := NewGrid(2, []Dim{wide, wide, wide}); err == nil {
		t.Fatal(">64 total bits must fail")
	}
}

func TestInterleaveKnownPattern(t *testing.T) {
	// Two 2-bit dims, 2 flag bits: Fig. 6c style.
	a := mustDim(t, "a", 0, 3, 1)
	b := mustDim(t, "b", 0, 3, 1)
	g, err := NewGrid(2, []Dim{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// flags=0b10, a=0b01, b=0b11 -> 10 | 0 1 | 1 1 = 0b100111? Round 0
	// takes MSBs (a1=0, b1=1), round 1 takes LSBs (a0=1, b0=1):
	// 10 01 11 -> 0b100111 = 39.
	k := g.Interleave(0b10, []uint32{0b01, 0b11})
	if k != 0b100111 {
		t.Fatalf("key = %06b, want 100111", k)
	}
	flags, coords := g.Deinterleave(k)
	if flags != 0b10 || coords[0] != 0b01 || coords[1] != 0b11 {
		t.Fatalf("deinterleave = %b %v", flags, coords)
	}
}

func TestInterleaveUnequalWidths(t *testing.T) {
	// a has 3 bits, b has 1: rounds are (a2,b0), (a1), (a0).
	a := mustDim(t, "a", 0, 7, 1)
	b := mustDim(t, "b", 0, 1, 1)
	g, err := NewGrid(1, []Dim{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// flags=1, a=0b101, b=0b1 -> 1 | (1,1) | (0) | (1) = 0b11101.
	k := g.Interleave(1, []uint32{0b101, 0b1})
	if k != 0b11101 {
		t.Fatalf("key = %05b, want 11101", k)
	}
	levels := g.Levels()
	if levels[1] != 2 || levels[2] != 1 || levels[3] != 1 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestQuickInterleaveRoundtrip(t *testing.T) {
	g := paperGrid(t)
	f := func(flags uint8, c0, c1, c2 uint32) bool {
		fl := uint64(flags % 4)
		coords := []uint32{c0 % 512, c1 % 2048, c2 % 2048}
		k := g.Interleave(fl, coords)
		gotFl, gotCo := g.Deinterleave(k)
		if gotFl != fl {
			return false
		}
		for i := range coords {
			if gotCo[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeCellBounds(t *testing.T) {
	g := paperGrid(t)
	vals := []float64{23.27, 514.9, 17.2}
	k := g.Encode(0b11, vals)
	flags, lo, hi := g.CellBounds(k)
	if flags != 0b11 {
		t.Fatalf("flags = %b", flags)
	}
	for i := range vals {
		if vals[i] < lo[i] || vals[i] > hi[i] {
			t.Fatalf("dim %d: value %g outside cell [%g, %g]", i, vals[i], lo[i], hi[i])
		}
		if !math.IsInf(lo[i], 0) && !math.IsInf(hi[i], 0) && hi[i]-lo[i] > g.Dims[i].Res+1e-9 {
			t.Fatalf("dim %d: cell wider than resolution", i)
		}
	}
}

func TestFlagsHelpers(t *testing.T) {
	g := paperGrid(t)
	k := g.Encode(0b01, []float64{20, 100, 100})
	if g.Flags(k) != 0b01 {
		t.Fatalf("Flags = %b", g.Flags(k))
	}
	k2 := g.WithFlags(k, 0b11)
	if g.Flags(k2) != 0b11 {
		t.Fatalf("WithFlags = %b", g.Flags(k2))
	}
	// Coordinates untouched.
	_, c1 := g.Deinterleave(k)
	_, c2 := g.Deinterleave(k2)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("WithFlags must not disturb coordinates")
		}
	}
}

func TestFlagFor(t *testing.T) {
	// Paper convention: '10' = A (relation 0), '01' = B (relation 1).
	if FlagFor(0, 2) != 0b10 {
		t.Fatalf("FlagFor(0,2) = %b, want 10", FlagFor(0, 2))
	}
	if FlagFor(1, 2) != 0b01 {
		t.Fatalf("FlagFor(1,2) = %b, want 01", FlagFor(1, 2))
	}
	if FlagFor(0, 2)|FlagFor(1, 2) != 0b11 {
		t.Fatal("both relations should be 11")
	}
}

// Z-order locality: nearby points in value space share long key prefixes
// more often than far-apart points. This is the property the quadtree
// exploits (paper Fig. 6).
func TestZOrderLocality(t *testing.T) {
	g := paperGrid(t)
	rng := rand.New(rand.NewSource(7))
	sharedPrefix := func(a, b Key) int {
		for i := g.TotalBits - 1; i >= 0; i-- {
			if (a>>uint(i))&1 != (b>>uint(i))&1 {
				return g.TotalBits - 1 - i
			}
		}
		return g.TotalBits
	}
	var near, far float64
	n := 500
	for i := 0; i < n; i++ {
		base := []float64{rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050}
		nearby := []float64{base[0] + 0.1, base[1] + 1, base[2] + 1}
		distant := []float64{rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050}
		k := g.Encode(0b11, base)
		near += float64(sharedPrefix(k, g.Encode(0b11, nearby)))
		far += float64(sharedPrefix(k, g.Encode(0b11, distant)))
	}
	if near <= far*1.5 {
		t.Fatalf("Z-order not locality preserving: near avg %.1f, far avg %.1f bits", near/float64(n), far/float64(n))
	}
}

func TestRawBytes(t *testing.T) {
	if RawBytes(3) != 6 {
		t.Fatalf("RawBytes(3) = %d, want 6", RawBytes(3))
	}
}
