package zorder

import (
	"math/rand"
	"testing"
)

func benchGrid(b *testing.B) *Grid {
	b.Helper()
	temp, _ := NewDim("temp", 0, 40, 0.1)
	x, _ := NewDim("x", 0, 1050, 1)
	y, _ := NewDim("y", 0, 1050, 1)
	g, err := NewGrid(2, []Dim{temp, x, y})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkEncode(b *testing.B) {
	g := benchGrid(b)
	rng := rand.New(rand.NewSource(1))
	vals := make([][]float64, 256)
	for i := range vals {
		vals[i] = []float64{rng.Float64() * 40, rng.Float64() * 1050, rng.Float64() * 1050}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Encode(0b11, vals[i%len(vals)])
	}
}

func BenchmarkDeinterleave(b *testing.B) {
	g := benchGrid(b)
	k := g.Encode(0b10, []float64{23.2, 512, 700})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Deinterleave(k)
	}
}

func BenchmarkCellBounds(b *testing.B) {
	g := benchGrid(b)
	k := g.Encode(0b01, []float64{17.9, 40, 1020})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CellBounds(k)
	}
}
