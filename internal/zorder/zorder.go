// Package zorder implements the quantization and Z-order encoding of
// join-attribute tuples (paper §V-B, Figs. 6 and 7).
//
// A join-attribute tuple is a point in an n-dimensional space. Each
// dimension is quantized by a [min, max] range and a resolution; the cell
// count is rounded up to a power of two so a coordinate fits in a fixed
// number of bits. A tuple's Z-number is the bit interleaving of its cell
// coordinates, taken MSB-first; dimensions with fewer bits drop out of
// the interleaving once their bits are exhausted, exactly as the paper
// describes ("each dimension contributes to the bit interleaving until
// its bits are exhausted").
//
// Keys are additionally prefixed with relation flags (one bit per input
// relation, §V-C "Encoding of relation membership"), which form the
// topmost level of the quadtree the keys are later stored in. The level
// schedule — how many bits each quadtree level consumes — is derived here
// and shared with package quadtree.
package zorder

import (
	"fmt"
	"math"
)

// Dim is one quantized dimension.
type Dim struct {
	// Name identifies the attribute this dimension encodes.
	Name string
	// Min and Max bound the value range; out-of-range values clamp to
	// the boundary cells (paper Fig. 7, lines 12-15).
	Min, Max float64
	// Res is the quantization step.
	Res float64
	// Size is the cell count, rounded up to a power of two.
	Size uint32
	// Bits is log2(Size).
	Bits int
}

// NewDim computes the derived fields per the paper's Fig. 7 (lines 2-5):
// SizeOfDim = floor((Max-Min)/Res) + 1, rounded up to a power of two.
func NewDim(name string, min, max, res float64) (Dim, error) {
	if !(max > min) {
		return Dim{}, fmt.Errorf("zorder: dimension %q has empty range [%g, %g]", name, min, max)
	}
	if !(res > 0) {
		return Dim{}, fmt.Errorf("zorder: dimension %q has non-positive resolution %g", name, res)
	}
	cells := uint64(math.Floor((max-min)/res)) + 1
	size, bits := uint64(1), 0
	for size < cells {
		size <<= 1
		bits++
	}
	if bits > 32 {
		return Dim{}, fmt.Errorf("zorder: dimension %q needs %d bits (range too wide for resolution)", name, bits)
	}
	return Dim{Name: name, Min: min, Max: max, Res: res, Size: uint32(size), Bits: bits}, nil
}

// Cell maps a value to its cell coordinate, clamping out-of-range values
// to the boundary (which can only introduce false positives, never drop
// result tuples — paper §V-B).
func (d Dim) Cell(v float64) uint32 {
	c := math.Floor((v - d.Min) / d.Res)
	if c < 0 {
		return 0
	}
	if c >= float64(d.Size) {
		return d.Size - 1
	}
	return uint32(c)
}

// Bounds returns the value interval covered by cell c. The interval is
// closed on both ends, which is conservative for tri-state evaluation.
// Boundary cells extend to infinity on the clamped side, because clamped
// out-of-range values land there.
func (d Dim) Bounds(c uint32) (lo, hi float64) {
	lo = d.Min + float64(c)*d.Res
	hi = lo + d.Res
	if c == 0 {
		lo = math.Inf(-1)
	}
	if c == d.Size-1 {
		hi = math.Inf(1)
	}
	return lo, hi
}

// Key is an encoded point: relation flags followed by the Z-number,
// right-aligned in a uint64 (the first bit of the encoding is the most
// significant used bit). Numeric order of keys equals Z-order.
type Key = uint64

// Grid is the full encoding context for one query's join attributes.
type Grid struct {
	// Dims holds the quantized dimensions in join-attribute order.
	Dims []Dim
	// FlagBits is the number of relation-flag bits prefixed to each
	// point (one per input relation; 2 in the paper's presentation).
	FlagBits int
	// TotalBits is FlagBits plus the sum of dimension bits.
	TotalBits int
	// levels[l] is the number of bits quadtree level l consumes:
	// levels[0] is the flag prefix, then one entry per interleaving
	// round with the count of still-active dimensions.
	levels []int
}

// NewGrid builds a grid for the given dimensions and relation count.
func NewGrid(flagBits int, dims []Dim) (*Grid, error) {
	if flagBits < 1 || flagBits > 8 {
		return nil, fmt.Errorf("zorder: flag bits %d out of range [1, 8]", flagBits)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("zorder: no dimensions")
	}
	g := &Grid{Dims: dims, FlagBits: flagBits, TotalBits: flagBits}
	maxBits := 0
	for _, d := range dims {
		g.TotalBits += d.Bits
		if d.Bits > maxBits {
			maxBits = d.Bits
		}
	}
	if g.TotalBits > 64 {
		return nil, fmt.Errorf("zorder: %d total bits exceed the 64-bit key budget", g.TotalBits)
	}
	g.levels = append(g.levels, flagBits)
	for l := 0; l < maxBits; l++ {
		active := 0
		for _, d := range dims {
			if d.Bits > l {
				active++
			}
		}
		g.levels = append(g.levels, active)
	}
	return g, nil
}

// Levels returns the per-level bit widths (flag level first). The slice
// is shared; callers must not modify it.
func (g *Grid) Levels() []int { return g.levels }

// Encode quantizes vals (aligned with Dims) and interleaves them under
// the given relation flags.
func (g *Grid) Encode(flags uint64, vals []float64) Key {
	coords := make([]uint32, len(g.Dims))
	for i, d := range g.Dims {
		coords[i] = d.Cell(vals[i])
	}
	return g.Interleave(flags, coords)
}

// Interleave packs flags and cell coordinates into a key. Round l takes
// the (l+1)-th most significant bit of every dimension that still has
// bits left, in dimension order.
func (g *Grid) Interleave(flags uint64, coords []uint32) Key {
	if len(coords) != len(g.Dims) {
		panic(fmt.Sprintf("zorder: %d coords for %d dims", len(coords), len(g.Dims)))
	}
	var k Key
	used := 0
	put := func(bit uint64) {
		k = k<<1 | (bit & 1)
		used++
	}
	for b := g.FlagBits - 1; b >= 0; b-- {
		put(flags >> uint(b))
	}
	maxBits := len(g.levels) - 1
	for l := 0; l < maxBits; l++ {
		for i, d := range g.Dims {
			if d.Bits > l {
				put(uint64(coords[i]) >> uint(d.Bits-1-l))
			}
		}
	}
	if used != g.TotalBits {
		panic(fmt.Sprintf("zorder: interleaved %d bits, want %d", used, g.TotalBits))
	}
	return k
}

// Deinterleave splits a key back into relation flags and cell
// coordinates.
func (g *Grid) Deinterleave(k Key) (flags uint64, coords []uint32) {
	return g.DeinterleaveInto(k, make([]uint32, len(g.Dims)))
}

// DeinterleaveInto is Deinterleave writing into a caller-provided
// buffer, which must have len(g.Dims) entries; it allocates nothing,
// for hot paths that deinterleave many keys. The filled buffer is also
// returned as coords.
func (g *Grid) DeinterleaveInto(k Key, buf []uint32) (flags uint64, coords []uint32) {
	coords = buf
	for i := range coords {
		coords[i] = 0
	}
	pos := g.TotalBits
	get := func() uint64 {
		pos--
		return (k >> uint(pos)) & 1
	}
	for b := 0; b < g.FlagBits; b++ {
		flags = flags<<1 | get()
	}
	maxBits := len(g.levels) - 1
	for l := 0; l < maxBits; l++ {
		for i, d := range g.Dims {
			if d.Bits > l {
				coords[i] = coords[i]<<1 | uint32(get())
			}
		}
	}
	return flags, coords
}

// CellBounds returns the per-dimension value intervals of a key's cell,
// for tri-state join evaluation at the base station.
func (g *Grid) CellBounds(k Key) (flags uint64, lo, hi []float64) {
	flags, coords := g.Deinterleave(k)
	lo = make([]float64, len(g.Dims))
	hi = make([]float64, len(g.Dims))
	for i, d := range g.Dims {
		lo[i], hi[i] = d.Bounds(coords[i])
	}
	return flags, lo, hi
}

// Flags extracts just the relation flags of a key.
func (g *Grid) Flags(k Key) uint64 {
	return k >> uint(g.TotalBits-g.FlagBits)
}

// WithFlags returns k with its flag bits replaced by flags.
func (g *Grid) WithFlags(k Key, flags uint64) Key {
	shift := uint(g.TotalBits - g.FlagBits)
	mask := (uint64(1)<<uint(g.FlagBits) - 1) << shift
	return (k &^ mask) | (flags << shift)
}

// FlagFor returns the flag bit for relation index rel (0-based) among
// nRel relations: relation 0 is the most significant flag bit, matching
// the paper's '10' = A, '01' = B convention.
func FlagFor(rel, nRel int) uint64 {
	return 1 << uint(nRel-1-rel)
}

// RawBytes returns the wire size of one unencoded join-attribute tuple
// with n attributes at 2 bytes per attribute, for the no-quadtree
// baseline.
func RawBytes(n int) int { return 2 * n }
