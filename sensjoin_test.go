package sensjoin_test

import (
	"math"
	"strings"
	"testing"

	"sensjoin"
)

func testNet(t *testing.T, nodes int, seed int64) *sensjoin.Network {
	t.Helper()
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

const apiQuery = `
	SELECT A.temp, B.temp, distance(A.x, A.y, B.x, B.y)
	FROM Sensors A, Sensors B
	WHERE A.temp - B.temp > 5.0 ONCE`

func TestNewNetworkValidation(t *testing.T) {
	if _, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes must fail")
	}
	net := testNet(t, 150, 3)
	if net.Nodes() != 150 {
		t.Fatalf("Nodes = %d", net.Nodes())
	}
	if net.Area().Width() <= 0 || net.Area().Height() <= 0 {
		t.Fatal("degenerate area")
	}
	if net.TreeDepth() < 2 {
		t.Fatalf("tree depth %d suspicious", net.TreeDepth())
	}
	if d := net.AvgDegree(); d < 4 || d > 20 {
		t.Fatalf("avg degree %g out of plausible band", d)
	}
}

func TestExecuteMatchesGroundTruth(t *testing.T) {
	net := testNet(t, 150, 5)
	truth, err := net.GroundTruth(apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []sensjoin.Method{
		sensjoin.SENSJoin(),
		sensjoin.ExternalJoin(),
		sensjoin.SENSJoinNoQuad(),
		sensjoin.SENSJoinZlib(),
		sensjoin.SENSJoinBWZ(),
		sensjoin.SENSJoinWithOptions(sensjoin.Options{Dmax: 60}),
	} {
		res, err := net.Execute(apiQuery, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.Rows) != len(truth.Rows) {
			t.Fatalf("%s: %d rows, oracle %d", m.Name(), len(res.Rows), len(truth.Rows))
		}
		if !res.Complete {
			t.Fatalf("%s: incomplete on healthy network", m.Name())
		}
	}
}

func TestValidate(t *testing.T) {
	net := testNet(t, 50, 7)
	if err := net.Validate(apiQuery); err != nil {
		t.Fatal(err)
	}
	if err := net.Validate("SELECT garbage FROM"); err == nil {
		t.Fatal("bad syntax must fail validation")
	}
	if err := net.Validate("SELECT A.temp FROM Unknown A ONCE"); err == nil {
		t.Fatal("unknown relation must fail validation")
	}
}

func TestStatsAccessors(t *testing.T) {
	net := testNet(t, 150, 9)
	if _, err := net.Execute(apiQuery, sensjoin.SENSJoin()); err != nil {
		t.Fatal(err)
	}
	total := net.TotalPackets(sensjoin.SENSJoin())
	if total <= 0 {
		t.Fatal("no packets counted")
	}
	per := net.PerNodePackets(sensjoin.SENSJoin())
	if len(per) != 151 {
		t.Fatalf("PerNodePackets len %d", len(per))
	}
	var sum int64
	for _, p := range per {
		sum += p
	}
	if sum != total {
		t.Fatalf("per-node sum %d != total %d", sum, total)
	}
	node, load := net.MaxLoadedNode(sensjoin.SENSJoin())
	if node <= 0 || load <= 0 || load != maxI(per[1:]) {
		t.Fatalf("MaxLoadedNode = %d/%d", node, load)
	}
	if net.TotalEnergy() <= 0 {
		t.Fatal("no energy accounted")
	}
	if !strings.Contains(net.PhaseTable(), "ja-collect") {
		t.Fatalf("PhaseTable missing phases:\n%s", net.PhaseTable())
	}
	net.ResetStats()
	if net.TotalPackets(sensjoin.SENSJoin()) != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func maxI(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func TestFailureInjectionAndRecovery(t *testing.T) {
	net := testNet(t, 150, 11)
	victim := 23
	parent := net.RoutingParent(victim)
	if parent < 0 {
		t.Skip("node 23 unreachable in this draw")
	}
	net.FailLink(victim, parent)
	res, err := net.Execute(apiQuery, sensjoin.SENSJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("loss not detected")
	}
	rec, err := net.ExecuteWithRecovery(apiQuery, sensjoin.SENSJoin(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Complete || rec.Executions < 2 {
		t.Fatalf("recovery failed: complete=%v executions=%d", rec.Complete, rec.Executions)
	}
	net.RestoreLink(victim, parent)
	net.RepairRouting()
}

func TestMonitorAdvancesClock(t *testing.T) {
	net := testNet(t, 100, 13)
	results, err := net.Monitor(`
		SELECT COUNT(A.temp) FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 4 SAMPLE PERIOD 120`, sensjoin.SENSJoin(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rounds = %d", len(results))
	}
	if net.Clock() != 360 {
		t.Fatalf("clock = %g, want 360", net.Clock())
	}
	if err := checkMonitorRejectsOnce(net); err != nil {
		t.Fatal(err)
	}
}

func checkMonitorRejectsOnce(net *sensjoin.Network) error {
	_, err := net.Monitor("SELECT A.temp FROM Sensors A ONCE", sensjoin.SENSJoin(), 1)
	if err == nil {
		return errOnceAccepted
	}
	return nil
}

var errOnceAccepted = errString("Monitor accepted a ONCE query")

type errString string

func (e errString) Error() string { return string(e) }

func TestFractionHelper(t *testing.T) {
	r := &sensjoin.Result{ContributingNodes: 25, MemberNodes: 100}
	if r.Fraction() != 0.25 {
		t.Fatalf("Fraction = %g", r.Fraction())
	}
	empty := &sensjoin.Result{}
	if empty.Fraction() != 0 || math.IsNaN(empty.Fraction()) {
		t.Fatal("empty fraction should be 0")
	}
}

func TestKillAndReviveNode(t *testing.T) {
	net := testNet(t, 100, 17)
	base, err := net.Execute(apiQuery, sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	net.KillNode(40)
	net.RepairRouting()
	res, err := net.Execute(apiQuery, sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != base.MemberNodes-1 {
		t.Fatalf("members %d, want %d", res.MemberNodes, base.MemberNodes-1)
	}
	net.ReviveNode(40)
	net.RepairRouting()
	res, err = net.Execute(apiQuery, sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != base.MemberNodes {
		t.Fatal("revived node did not rejoin")
	}
}

func TestDisseminateQuery(t *testing.T) {
	net := testNet(t, 80, 19)
	if err := net.DisseminateQuery(apiQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(net.PhaseTable(), "query-dissem") {
		t.Fatal("flood not accounted")
	}
}

func TestCustomPacketSize(t *testing.T) {
	small, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 150, Seed: 21, MaxPacket: 48})
	if err != nil {
		t.Fatal(err)
	}
	big, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 150, Seed: 21, MaxPacket: 124})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Execute(apiQuery, sensjoin.ExternalJoin()); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Execute(apiQuery, sensjoin.ExternalJoin()); err != nil {
		t.Fatal(err)
	}
	if big.TotalPackets(sensjoin.ExternalJoin()) >= small.TotalPackets(sensjoin.ExternalJoin()) {
		t.Fatal("larger packets should reduce packet count")
	}
}

func TestBaseAtCenterShortensTree(t *testing.T) {
	corner := testNet(t, 400, 23)
	center, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 400, Seed: 23, BaseAtCenter: true})
	if err != nil {
		t.Fatal(err)
	}
	if center.TreeDepth() >= corner.TreeDepth() {
		t.Fatalf("center depth %d should be below corner depth %d",
			center.TreeDepth(), corner.TreeDepth())
	}
}

func TestPacketLossDetectedAndRecoverable(t *testing.T) {
	net := testNet(t, 150, 51)
	net.SetPacketLoss(0.05, 99)
	res, err := net.Execute(apiQuery, sensjoin.SENSJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Skip("lucky run: no result-relevant packet lost") // seed-dependent but stable
	}
	// Recovery keeps re-executing; with 5% loss a few attempts usually
	// succeed. If not, the result must still honestly say incomplete.
	rec, err := net.ExecuteWithRecovery(apiQuery, sensjoin.SENSJoin(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Executions < 1 {
		t.Fatal("no executions recorded")
	}
	if rec.Complete {
		truth, err := net.GroundTruth(apiQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Rows) != len(truth.Rows) {
			t.Fatalf("complete result has %d rows, oracle %d", len(rec.Rows), len(truth.Rows))
		}
	}
	net.SetPacketLoss(0, 0)
	res, err = net.Execute(apiQuery, sensjoin.SENSJoin())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("disabling loss should restore completeness")
	}
}
